module P = Geometry.Point

let buffer_color (b : Circuit.Buffer_lib.t) =
  if b.Circuit.Buffer_lib.size >= 30. then "#c0392b"
  else if b.Circuit.Buffer_lib.size >= 20. then "#e67e22"
  else "#f1c40f"

let render ?(width_px = 900) ?(blockages = []) (root : Ctree.t) =
  let pts = ref [] in
  Ctree.iter (fun n -> pts := n.Ctree.pos :: !pts) root;
  let bbox = Geometry.Bbox.of_points !pts in
  let bbox = Geometry.Bbox.expand bbox (0.05 *. Geometry.Bbox.longest_side bbox +. 10.) in
  let span = Float.max (Geometry.Bbox.width bbox) (Geometry.Bbox.height bbox) in
  let scale = float_of_int width_px /. span in
  let px (p : P.t) =
    ( (p.P.x -. bbox.Geometry.Bbox.xmin) *. scale,
      (bbox.Geometry.Bbox.ymax -. p.P.y) *. scale )
  in
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let h_px = int_of_float (Geometry.Bbox.height bbox *. scale) in
  add
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\">\n"
    width_px h_px width_px h_px;
  add "<rect width=\"100%%\" height=\"100%%\" fill=\"#fdfdfd\"/>\n";
  (* Blockages under everything. *)
  List.iter
    (fun (bb : Geometry.Bbox.t) ->
      let x1, y1 =
        px { P.x = bb.Geometry.Bbox.xmin; y = bb.Geometry.Bbox.ymax }
      in
      let x2, y2 =
        px { P.x = bb.Geometry.Bbox.xmax; y = bb.Geometry.Bbox.ymin }
      in
      add
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
         fill=\"#d5d8dc\" stroke=\"#95a5a6\" stroke-width=\"1\"/>\n"
        x1 y1 (x2 -. x1) (y2 -. y1))
    blockages;
  (* Wires next (under the devices). *)
  Ctree.iter
    (fun n ->
      List.iter
        (fun (e : Ctree.edge) ->
          let x1, y1 = px n.Ctree.pos in
          let x2, y2 = px e.Ctree.child.Ctree.pos in
          add
            "<polyline points=\"%.1f,%.1f %.1f,%.1f %.1f,%.1f\" fill=\"none\" \
             stroke=\"#2980b9\" stroke-width=\"1\"/>\n"
            x1 y1 x2 y1 x2 y2)
        n.Ctree.children)
    root;
  (* Devices. *)
  Ctree.iter
    (fun n ->
      let x, y = px n.Ctree.pos in
      match n.Ctree.kind with
      | Ctree.Sink _ ->
          add "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\" fill=\"#27ae60\"/>\n" x y
      | Ctree.Buf buf ->
          if n.Ctree.id = root.Ctree.id then
            add
              "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"6\" fill=\"none\" \
               stroke=\"#8e44ad\" stroke-width=\"2.5\"/>\n"
              x y
          else
            add
              "<rect x=\"%.1f\" y=\"%.1f\" width=\"5\" height=\"5\" \
               fill=\"%s\"/>\n"
              (x -. 2.5) (y -. 2.5) (buffer_color buf)
      | Ctree.Merge -> ())
    root;
  add "</svg>\n";
  Buffer.contents b

let write_file ?width_px ?blockages root path =
  (* Render before opening: a render failure (e.g. an empty tree with
     no bounding box) must not leave a truncated file behind. *)
  let svg = render ?width_px ?blockages root in
  let oc = open_out path in
  output_string oc svg;
  close_out oc
