(** SVG rendering of a synthesized clock tree layout.

    Wires are drawn as horizontal-then-vertical staircases between node
    positions, sinks as circles, buffers as squares (colored by drive
    strength), and the root driver as a ring. Useful for eyeballing
    topology quality, detours and buffer placement. 

    Domain-safety: rendering uses a call-local Buffer; trees are read-only here. Safe from any domain. *)

val render :
  ?width_px:int -> ?blockages:Geometry.Bbox.t list -> Ctree.t -> string
  [@@cts.raises "Invalid_argument"]
(** Render to an SVG document string. The viewport is fitted to the
    tree's bounding box with a small margin. [blockages] are drawn as
    hatched grey rectangles under the tree. *)

val write_file :
  ?width_px:int -> ?blockages:Geometry.Bbox.t list -> Ctree.t -> string ->
  unit
  [@@cts.raises "Invalid_argument,Sys_error"]
