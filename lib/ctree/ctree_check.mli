(** Static verifier for synthesized clock trees.

    Prong B of the cts_lint subsystem: where [lib/lint] checks the
    {e sources} for determinism hazards, this module checks every
    {e artifact} — a {!Ctree.t} — against the structural and electrical
    invariants the synthesis flow promises:

    - single-parent / acyclic structure with unique node ids;
    - canonical preorder ids (what {!Ctree.renumber} establishes and
      the deterministic netlist relies on);
    - sinks at leaves only, internal arity at most 2, no childless
      internal nodes;
    - every wire geometrically consistent with its recorded length:
      routed length may exceed the endpoints' Manhattan distance
      (snaking), never undercut it — snaking slack is nonnegative;
    - per-stage slew at every stage endpoint within the library limit;
    - every buffer driven with an input slew inside the characterized
      fit range of the delay library;
    - sink latencies matching the reference analyzer within tolerance.

    This library cannot depend on [delaylib] or [cts_core] (they sit
    above it), so timing-dependent checks are parameterized by an
    {!env} of closures; [Cts.verify_tree] builds one from the delay
    library and the active configuration.

    Domain-safety: checking mutates only call-local scratch (a visited
    table and a work queue); trees and the environment are read-only.
    Safe from any domain. *)

type violation =
  | Duplicate_id of { id : int }
  | Non_canonical_id of { expected : int; got : int }
      (** Preorder position [expected] (1-based) holds node [got]. *)
  | Sink_not_leaf of { id : int; name : string }
  | Overfull_node of { id : int; children : int }  (** Arity > 2. *)
  | Childless_internal of { id : int }
  | Short_edge of {
      parent : int;
      child : int;
      length : float;
      manhattan : float [@cts.unit "um"];
    }
      (** Recorded routed length undercuts the endpoint Manhattan
          distance: negative snaking slack. *)
  | Root_not_buffer of { id : int }
  | Stage_slew of {
      driver : int;
      node : int;
      slew : float;
      limit : float [@cts.unit "ps"];
    }
      (** Slew at a stage endpoint [node] (driven from the stage rooted
          at [driver]) exceeds the library limit. *)
  | Buffer_input_slew of {
      id : int;
      slew : float;
      lo : float [@cts.unit "ps"];
      hi : float [@cts.unit "ps"];
    }
      (** A buffer is driven with an input slew outside the
          characterized fit range [lo, hi]: its delay would be an
          extrapolation the library never validated. *)
  | Latency_mismatch of {
      sink : string;
      got : float [@cts.unit "ps"];
      expected : float [@cts.unit "ps"];
      tol : float [@cts.unit "ps"];
    }
  | Missing_sink of { sink : string }
      (** A sink present in the reference latencies is absent from the
          tree (or vice versa; [expected] side is named). *)

val to_string : violation -> string

type env = {
  stage :
    drive:Circuit.Buffer_lib.t ->
    input_slew:float ->
    Ctree.t ->
    (Ctree.t * (float[@cts.unit "ps"]) * (float[@cts.unit "ps"])) list;
      (** Endpoints [(node, delay, slew)] of the buffer stage rooted at
          the given node, mirroring [Timing.analyze_stage]. *)
  default_driver : Circuit.Buffer_lib.t;
      (** Driver assumed for a buffer-less (partial) region root. *)
  slew_limit : float;  (** Library slew limit (s). *)
  slew_range : (float[@cts.unit "ps"]) * (float[@cts.unit "ps"]);
      (** Characterized input-slew fit domain of the delay library. *)
  source_slew : float;  (** Input slew presented at the tree root. *)
}

val structure : ?canonical_ids:bool -> Ctree.t -> violation list
(** Structural invariants only — no [env] needed, usable on partial
    trees during synthesis. [canonical_ids] (default [true]) also
    demands ids be exactly the 1-based preorder numbering. *)

val timing :
  env -> Ctree.t -> violation list * (string * (float[@cts.unit "ps"])) list
  [@@cts.raises "Invalid_argument"]
(** Stage-by-stage electrical walk: returns slew/input-range violations
    and the computed absolute sink latencies (offsets not applied). A
    [Merge]-rooted region is driven by [env.default_driver]. *)

val verify :
  ?canonical_ids:bool ->
  ?require_root_buffer:bool ->
  ?expected_latencies:(string * (float[@cts.unit "ps"])) list ->
  ?tol:(float[@cts.unit "ps"]) ->
  env ->
  Ctree.t ->
  violation list
  [@@cts.raises "Invalid_argument"]
(** The full check: {!structure} plus {!timing} plus — when
    [expected_latencies] is given — comparison of every sink's computed
    latency against the reference within [tol] (default [1e-12] s).
    [require_root_buffer] (default [true]) demands the root be the
    planted source driver. *)

exception Check_failed of violation list

val verify_exn :
  ?canonical_ids:bool ->
  ?require_root_buffer:bool ->
  ?expected_latencies:(string * (float[@cts.unit "ps"])) list ->
  ?tol:(float[@cts.unit "ps"]) ->
  env ->
  Ctree.t ->
  unit
  [@@cts.raises "Check_failed,Invalid_argument"]
(** Raises {!Check_failed} with the (non-empty) violation list. *)
