type spec = { name : string; pos : Geometry.Point.t; cap : float }

let centroid specs = Geometry.Point.centroid (List.map (fun s -> s.pos) specs)
let bbox specs = Geometry.Bbox.of_points (List.map (fun s -> s.pos) specs)

let validate specs =
  let errors = ref [] in
  if specs = [] then errors := "no sinks" :: !errors;
  let seen = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s.name then
        errors := Printf.sprintf "duplicate sink name %s" s.name :: !errors;
      Hashtbl.replace seen s.name ();
      if s.cap <= 0. then
        errors := Printf.sprintf "sink %s has non-positive cap" s.name :: !errors)
    specs;
  List.rev !errors
