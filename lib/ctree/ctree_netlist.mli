(** SPICE deck export for synthesized clock trees.

    Produces a self-contained deck (source, buffer subcircuits, pi-model
    wires, sink loads, per-sink delay/slew `.measure` cards) so that
    results can be double-checked in an external SPICE. 

    Domain-safety: deck emission uses call-local buffers; trees are read-only here. Safe from any domain. *)

val to_deck :
  ?source_slew:float -> ?t_stop:(float[@cts.unit "ps"]) -> Circuit.Tech.t -> Ctree.t -> string
  [@@cts.raises "Invalid_argument"]
(** Render the tree. Wire segments between recorded route points are
    emitted individually. Raises [Invalid_argument] if the root is not a
    buffer. *)

val write_file :
  ?source_slew:float -> ?t_stop:(float[@cts.unit "ps"]) -> Circuit.Tech.t -> Ctree.t ->
  string -> unit
  [@@cts.raises "Invalid_argument,Sys_error"]
