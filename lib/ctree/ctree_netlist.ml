module Spice_deck = Circuit.Spice_deck

let node_name (n : Ctree.t) prefix = Printf.sprintf "%s%d" prefix n.Ctree.id

let to_deck ?(source_slew = 60e-12) ?(t_stop = 20e-9) tech (root : Ctree.t) =
  (match root.Ctree.kind with
  | Ctree.Buf _ -> ()
  | Ctree.Sink _ | Ctree.Merge ->
      invalid_arg "Ctree_netlist.to_deck: root must be a buffer");
  let b = Stdlib.Buffer.create 4096 in
  let add s = Stdlib.Buffer.add_string b s in
  add (Spice_deck.header tech);
  let ramp = source_slew /. 0.8 in
  add
    (Printf.sprintf "Vclk clkin 0 PWL(0 0 100p 0 %.4g '%g')\n"
       (100e-12 +. ramp) tech.Circuit.Tech.vdd);
  let sinks = ref [] in
  (* Each node owns an electrical net. Buffers split their net into
     <name>i (gate) and <name>o (output stage). *)
  let net_of (n : Ctree.t) ~side =
    match n.Ctree.kind with
    | Ctree.Buf _ -> node_name n "n" ^ side
    | Ctree.Sink _ | Ctree.Merge -> node_name n "n"
  in
  let rec emit (n : Ctree.t) =
    (match n.Ctree.kind with
    | Ctree.Buf buf ->
        add
          (Spice_deck.buffer_card
             ~name:(node_name n "b")
             ~buf
             ~input:(net_of n ~side:"i")
             ~output:(net_of n ~side:"o"))
    | Ctree.Sink { name; cap } ->
        sinks := name :: !sinks;
        add (Spice_deck.sink_card ~name ~node:(net_of n ~side:"") ~cap)
    | Ctree.Merge -> ());
    List.iter
      (fun (e : Ctree.edge) ->
        add
          (Spice_deck.wire_card tech
             ~name:(Printf.sprintf "w%d_%d" n.Ctree.id e.Ctree.child.Ctree.id)
             ~from_node:(net_of n ~side:"o")
             ~to_node:(net_of e.Ctree.child ~side:"i")
             ~length:e.Ctree.length);
        emit e.Ctree.child)
      n.Ctree.children
  in
  (* Tie the clock source straight to the root buffer's gate. *)
  add (Printf.sprintf "Rsrc clkin %s 0.001\n" (net_of root ~side:"i"));
  emit root;
  add
    (Spice_deck.measure_cards ~vdd:tech.Circuit.Tech.vdd ~source_node:"clkin"
       ~sinks:(List.rev !sinks));
  add (Spice_deck.footer ~t_stop);
  Stdlib.Buffer.contents b

let write_file ?source_slew ?t_stop tech root path =
  let deck = to_deck ?source_slew ?t_stop tech root in
  let oc = open_out path in
  output_string oc deck;
  close_out oc
