(** Buffered clock trees.

    The output of synthesis: a rooted tree whose leaves are clock sinks,
    whose internal nodes are merge points, and which — unlike classical
    DME trees — may carry buffers {e anywhere}, including in the middle
    of routing paths (the "aggressive" insertion of the paper's title).

    Edge lengths record the {e routed} wirelength, which may exceed the
    Manhattan distance between the endpoints when the router snaked wire
    to balance delays.

    Domain-safety: trees are immutable; the only shared state is the
    process-wide node-id counter behind the constructors, which is
    atomic. Raw ids are therefore unique but schedule-dependent —
    {!renumber} (applied by synthesis before returning any tree)
    restores canonical preorder ids independent of which domain built
    each node. *)

type kind =
  | Sink of { name : string; cap : float }
  | Merge  (** Unbuffered merge/steiner point. *)
  | Buf of Circuit.Buffer_lib.t  (** Buffer inserted at this location. *)

type t = { id : int; kind : kind; pos : Geometry.Point.t; children : edge list }
and edge = { length : float; route : Geometry.Point.t list; child : t }

val sink : name:string -> pos:Geometry.Point.t -> cap:float -> t
val merge : pos:Geometry.Point.t -> edge list -> t
val buffer : pos:Geometry.Point.t -> Circuit.Buffer_lib.t -> edge list -> t

val edge : ?route:Geometry.Point.t list -> length:float -> t -> edge
(** [route] lists intermediate bend points (excluding the endpoints). *)

val connect :
  parent_pos:Geometry.Point.t -> ?extra:(float[@cts.unit "um"]) -> t -> edge
(** Straight (Manhattan-length) edge from a parent at [parent_pos] to the
    given subtree root, plus [extra] snaked length (default 0). *)

val sinks : t -> t list
(** All sink nodes, left-to-right. *)

val n_nodes : t -> int
val n_buffers : t -> int

val buffer_histogram : t -> (string * int) list
(** Buffer count per library cell name. *)

val total_wirelength : t -> float
(** Sum of routed edge lengths (um). *)

val total_sink_cap : t -> float

type cap_breakdown = {
  wire_cap : float;  (** Total routed wire capacitance (F). *)
  buffer_cap : float;  (** Gate + parasitic capacitance of all buffers. *)
  sink_cap : float;
}

val capacitance_breakdown : Circuit.Tech.t -> t -> cap_breakdown

val dynamic_power :
  Circuit.Tech.t -> freq:(float[@cts.unit "dimensionless"]) -> t ->
  (float[@cts.unit "dimensionless"])
(** Clock-network dynamic power [C_total * Vdd^2 * f] (W): every node of
    the clock net swings rail-to-rail once per cycle. Hz and W lie
    outside the units checker's lattice; [dimensionless] marks them as
    deliberately unchecked scalars. *)

val depth : t -> int

val validate : t -> string list
(** Structural invariant violations (empty = valid): sinks must be
    leaves, arity at most 2, edge length at least the Manhattan distance
    between endpoints (tolerance 1e-6), ids unique. *)

val iter : (t -> unit) -> t -> unit
(** Preorder traversal. *)

val fresh_id : unit -> int
(** Global id supply used by the constructors (exposed for tools that
    rebuild trees by hand). Atomic — safe to call from any domain; the
    values are unique but their order is schedule-dependent under
    parallel construction (see {!renumber}). *)

val renumber : t -> t
(** Rebuild the tree with ids reassigned 1..n in preorder. This is the
    canonical form: two structurally equal trees renumber to equal trees
    regardless of which domains allocated their nodes, which is what
    keeps {!Ctree_netlist} output bit-identical between sequential and
    parallel synthesis. *)

val pp_summary : Format.formatter -> t -> unit
