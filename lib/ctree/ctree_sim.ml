module W = Waveform
module T = Spice_sim.Transient
module Rc = Circuit.Rc_tree
module Buffer_lib = Circuit.Buffer_lib

type metrics = {
  latency : float;
  skew : float;
  worst_slew : float;
  worst_slew_node : string;
  sink_delays : (string * float) list;
  n_stages : int;
  all_settled : bool;
}

(* Build the RC tree of one stage: everything below [node]'s output until
   the next buffers (which appear as their gate capacitance). Returns the
   RC tree plus the buffer nodes discovered at the stage boundary. *)
let build_stage tech (node : Ctree.t) =
  let next_buffers = ref [] in
  let stage_sinks = ref [] in
  let rec sub (child : Ctree.t) : Rc.t =
    match child.Ctree.kind with
    | Ctree.Sink { name; cap } ->
        stage_sinks := child :: !stage_sinks;
        Rc.leaf ~tag:("sink:" ^ name) cap
    | Ctree.Buf b ->
        next_buffers := (child, "buf:" ^ string_of_int child.Ctree.id) :: !next_buffers;
        Rc.leaf
          ~tag:("buf:" ^ string_of_int child.Ctree.id)
          (Buffer_lib.input_cap tech b)
    | Ctree.Merge ->
        Rc.node ~tag:("m:" ^ string_of_int child.Ctree.id) (edges child)
  and edges (n : Ctree.t) =
    List.map
      (fun (e : Ctree.edge) -> Rc.wire tech ~length:e.Ctree.length (sub e.Ctree.child))
      n.Ctree.children
  in
  let tree = Rc.node ~tag:"out" (edges node) in
  (tree, !next_buffers, !stage_sinks)

let crop_margin = 100e-12

let simulate ?(config = T.default_config) ?(source_slew = 60e-12) tech
    (root : Ctree.t) =
  (match root.Ctree.kind with
  | Ctree.Buf _ -> ()
  | Ctree.Sink _ | Ctree.Merge ->
      invalid_arg "Ctree_sim.simulate: root must be a buffer");
  let vdd = tech.Circuit.Tech.vdd in
  let source = W.smooth_curve ~vdd ~slew:source_slew () in
  let t_source_50 =
    match W.crossing source (0.5 *. vdd) with
    | Some t -> t
    | None -> assert false
  in
  let worst_slew = ref 0. in
  let worst_slew_node = ref "" in
  let sink_arrivals = ref [] in
  let n_stages = ref 0 in
  let all_settled = ref true in
  let note_slew tag wave =
    match W.slew_10_90 wave ~vdd with
    | Some s ->
        if s > !worst_slew then begin
          worst_slew := s;
          worst_slew_node := tag
        end
    | None -> all_settled := false
  in
  (* Worklist of buffer stages: (buffer node, input waveform). *)
  let queue = Queue.create () in
  Queue.add (root, source) queue;
  while not (Queue.is_empty queue) do
    let node, input = Queue.pop queue in
    incr n_stages;
    let buf =
      match node.Ctree.kind with
      | Ctree.Buf b -> b
      | Ctree.Sink _ | Ctree.Merge -> assert false
    in
    let rc, next, stage_sinks = build_stage tech node in
    let res = T.simulate ~config tech (T.Driven_buffer (buf, input)) rc in
    if not (T.settled res) then all_settled := false;
    note_slew ("out:" ^ string_of_int node.Ctree.id) (T.root_waveform res);
    (* Sinks reached within this stage. *)
    List.iter
      (fun (s : Ctree.t) ->
        match s.Ctree.kind with
        | Ctree.Sink { name; _ } -> (
            let wave = T.waveform res ("sink:" ^ name) in
            note_slew ("sink:" ^ name) wave;
            match W.crossing wave (0.5 *. vdd) with
            | Some t -> sink_arrivals := (name, t -. t_source_50) :: !sink_arrivals
            | None ->
                all_settled := false;
                sink_arrivals := (name, Float.infinity) :: !sink_arrivals)
        | Ctree.Buf _ | Ctree.Merge -> ())
      stage_sinks;
    (* Seed downstream buffer stages with cropped input waveforms. *)
    List.iter
      (fun (bnode, tag) ->
        let wave = T.waveform res tag in
        note_slew tag wave;
        let cropped =
          match W.crossing wave (0.01 *. vdd) with
          | Some t -> W.crop_before wave (t -. crop_margin)
          | None -> wave
        in
        Queue.add (bnode, cropped) queue)
      next
  done;
  let delays = List.map snd !sink_arrivals in
  let finite = List.filter (fun d -> Float.is_finite d) delays in
  let latency = List.fold_left Float.max 0. delays in
  let min_delay = List.fold_left Float.min Float.infinity finite in
  let skew =
    match finite with [] -> Float.infinity | _ :: _ -> latency -. min_delay
  in
  {
    latency;
    skew;
    worst_slew = !worst_slew;
    worst_slew_node = !worst_slew_node;
    sink_delays = List.rev !sink_arrivals;
    n_stages = !n_stages;
    all_settled = !all_settled;
  }
