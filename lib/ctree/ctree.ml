module Point = Geometry.Point

type kind =
  | Sink of { name : string; cap : float }
  | Merge
  | Buf of Circuit.Buffer_lib.t

type t = { id : int; kind : kind; pos : Point.t; children : edge list }
and edge = { length : float; route : Point.t list; child : t }

(* Atomic: synthesis builds subtrees from several domains at once. Raw
   ids are therefore unique but schedule-dependent; Cts renumbers the
   finished tree canonically (see [renumber]) before returning it. *)
let id_counter = Atomic.make 0
let[@cts.guarded "atomic"] fresh_id () = 1 + Atomic.fetch_and_add id_counter 1

let sink ~name ~pos ~cap =
  { id = fresh_id (); kind = Sink { name; cap }; pos; children = [] }

let merge ~pos children = { id = fresh_id (); kind = Merge; pos; children }

let buffer ~pos buf children =
  { id = fresh_id (); kind = Buf buf; pos; children }

let edge ?(route = []) ~length child = { length; route; child }

let connect ~parent_pos ?(extra = 0.) child =
  { length = Point.manhattan parent_pos child.pos +. extra;
    route = [];
    child }

let renumber t =
  let next = ref 0 in
  let rec go n =
    incr next;
    let id = !next in
    { n with id; children = List.map (fun e -> { e with child = go e.child }) n.children }
  in
  go t

let rec iter f t =
  f t;
  List.iter (fun e -> iter f e.child) t.children

let sinks t =
  let acc = ref [] in
  iter (fun n -> match n.kind with Sink _ -> acc := n :: !acc | Merge | Buf _ -> ()) t;
  List.rev !acc

let n_nodes t =
  let c = ref 0 in
  iter (fun _ -> incr c) t;
  !c

let n_buffers t =
  let c = ref 0 in
  iter (fun n -> match n.kind with Buf _ -> incr c | Sink _ | Merge -> ()) t;
  !c

let buffer_histogram t =
  let tbl = Hashtbl.create 8 in
  iter
    (fun n ->
      match n.kind with
      | Buf b ->
          let name = b.Circuit.Buffer_lib.name in
          Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name))
      | Sink _ | Merge -> ())
    t;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let total_wirelength t =
  let acc = ref 0. in
  iter (fun n -> List.iter (fun e -> acc := !acc +. e.length) n.children) t;
  !acc

let total_sink_cap t =
  List.fold_left
    (fun acc s -> match s.kind with Sink { cap; _ } -> acc +. cap | _ -> acc)
    0. (sinks t)

type cap_breakdown = {
  wire_cap : float;
  buffer_cap : float;
  sink_cap : float;
}

let capacitance_breakdown tech t =
  let wire = ref 0. and buf = ref 0. and sink = ref 0. in
  iter
    (fun n ->
      List.iter
        (fun e -> wire := !wire +. Circuit.Tech.wire_cap tech e.length)
        n.children;
      match n.kind with
      | Buf b ->
          buf :=
            !buf
            +. Circuit.Buffer_lib.input_cap tech b
            +. Circuit.Buffer_lib.internal_cap tech b
            +. Circuit.Buffer_lib.output_cap tech b
      | Sink { cap; _ } -> sink := !sink +. cap
      | Merge -> ())
    t;
  { wire_cap = !wire; buffer_cap = !buf; sink_cap = !sink }

let dynamic_power tech ~freq t =
  let b = capacitance_breakdown tech t in
  let total = b.wire_cap +. b.buffer_cap +. b.sink_cap in
  let vdd = tech.Circuit.Tech.vdd in
  total *. vdd *. vdd *. freq

let rec depth t =
  1 + List.fold_left (fun acc e -> Int.max acc (depth e.child)) 0 t.children

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let seen = Hashtbl.create 64 in
  iter
    (fun n ->
      if Hashtbl.mem seen n.id then err "duplicate node id %d" n.id;
      Hashtbl.replace seen n.id ();
      (match n.kind with
      | Sink { name; _ } ->
          if n.children <> [] then err "sink %s is not a leaf" name
      | Merge | Buf _ ->
          if List.length n.children > 2 then
            err "node %d has arity %d > 2" n.id (List.length n.children);
          if n.children = [] then err "internal node %d has no children" n.id);
      List.iter
        (fun e ->
          let d = Point.manhattan n.pos e.child.pos in
          if ((e.length +. 1e-6) [@cts.unit_ok]) < d then
            err "edge %d->%d shorter (%g) than Manhattan distance (%g)" n.id
              e.child.id e.length d)
        n.children)
    t;
  List.rev !errors

let pp_summary fmt t =
  Format.fprintf fmt
    "clock tree: %d sinks, %d buffers, %d nodes, depth %d, wirelength %.0f um"
    (List.length (sinks t))
    (n_buffers t) (n_nodes t) (depth t) (total_wirelength t)
