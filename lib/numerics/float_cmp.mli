(** Tolerant float comparisons for tie-breaking decisions.

    Raw [<] / [=] on computed floats makes control flow depend on
    ulp-level noise: two mathematically equal merge costs computed
    along different expression paths can differ by one rounding step,
    flipping a decision that should be a tie. These helpers give such
    decisions an explicit relative tolerance. *)

val rel_default : float
(** Default relative tolerance, [1e-9]: far above double rounding
    noise, far below any physically meaningful cost difference. *)

val approx_eq : ?rel:float -> ?abs:float -> float -> float -> bool
(** [approx_eq a b] is true when [|a - b| <= max abs (rel * max |a| |b|)]. *)

val definitely_lt : ?rel:float -> ?abs:float -> float -> float -> bool
(** [definitely_lt a b]: [a < b] by more than the tolerance — false on
    near-ties. Use for "is the alternative strictly better?" decisions
    that must not trigger on rounding noise. [abs] (default 0) sets a
    floor below which differences never count: quantities that are
    mathematically zero but computed along different paths can land at
    different noise magnitudes, where a relative test alone still sees
    a "win". *)

val cmp : ?rel:float -> float -> float -> int
(** Three-way comparison under {!approx_eq}: 0 on near-ties. *)
