let rel_default = 1e-9

let approx_eq ?(rel = rel_default) ?(abs = 0.) a b =
  Float.abs (a -. b) <= Float.max abs (rel *. Float.max (Float.abs a) (Float.abs b))

let definitely_lt ?(rel = rel_default) ?(abs = 0.) a b =
  a < b && not (approx_eq ~rel ~abs a b)

let cmp ?(rel = rel_default) a b =
  if approx_eq ~rel a b then 0 else compare a b
