(* Surfaces store, per input dimension, the affine normalization
   (center, half-width) used during fitting, plus the monomial exponent
   list and fitted coefficients. *)

type surface2 = {
  degree2 : int;
  cx2 : float;
  hx2 : float;
  cy2 : float;
  hy2 : float;
  coefs2 : float array; (* indexed like monomials2 degree2 *)
}

type surface3 = {
  degree3 : int;
  cx3 : float;
  hx3 : float;
  cy3 : float;
  hy3 : float;
  cz3 : float;
  hz3 : float;
  coefs3 : float array;
}

let monomials2 degree =
  let acc = ref [] in
  for i = degree downto 0 do
    for j = degree - i downto 0 do
      acc := (i, j) :: !acc
    done
  done;
  Array.of_list !acc

let monomials3 degree =
  let acc = ref [] in
  for i = degree downto 0 do
    for j = degree - i downto 0 do
      for k = degree - i - j downto 0 do
        acc := (i, j, k) :: !acc
      done
    done
  done;
  Array.of_list !acc

let n_terms2 d = Array.length (monomials2 d)
let n_terms3 d = Array.length (monomials3 d)

let norm_params values =
  let lo = Array.fold_left Float.min values.(0) values
  and hi = Array.fold_left Float.max values.(0) values in
  let c = (lo +. hi) /. 2. in
  let h = (hi -. lo) /. 2. in
  (c, if h > 0. then h else 1.)

let pow x n =
  let rec go acc n = if n = 0 then acc else go (acc *. x) (n - 1) in
  go 1. n

let fit2 ~degree pts zs =
  let n = Array.length pts in
  if n <> Array.length zs then invalid_arg "Polyfit.fit2: length mismatch";
  let mons = monomials2 degree in
  if n < Array.length mons then invalid_arg "Polyfit.fit2: underdetermined";
  let xs = Array.map fst pts and ys = Array.map snd pts in
  let cx2, hx2 = norm_params xs and cy2, hy2 = norm_params ys in
  let design = Matrix.create n (Array.length mons) in
  Array.iteri
    (fun r (x, y) ->
      let xn = (x -. cx2) /. hx2 and yn = (y -. cy2) /. hy2 in
      Array.iteri (fun c (i, j) -> Matrix.set design r c (pow xn i *. pow yn j)) mons)
    pts;
  let coefs2 = Matrix.lstsq design zs in
  { degree2 = degree; cx2; hx2; cy2; hy2; coefs2 }

let eval2 s x y =
  let xn = (x -. s.cx2) /. s.hx2 and yn = (y -. s.cy2) /. s.hy2 in
  let mons = monomials2 s.degree2 in
  let acc = ref 0. in
  Array.iteri
    (fun c (i, j) -> acc := !acc +. (s.coefs2.(c) *. pow xn i *. pow yn j))
    mons;
  !acc

let fit3 ~degree pts zs =
  let n = Array.length pts in
  if n <> Array.length zs then invalid_arg "Polyfit.fit3: length mismatch";
  let mons = monomials3 degree in
  if n < Array.length mons then invalid_arg "Polyfit.fit3: underdetermined";
  let xs = Array.map (fun (x, _, _) -> x) pts
  and ys = Array.map (fun (_, y, _) -> y) pts
  and zs' = Array.map (fun (_, _, z) -> z) pts in
  let cx3, hx3 = norm_params xs
  and cy3, hy3 = norm_params ys
  and cz3, hz3 = norm_params zs' in
  let design = Matrix.create n (Array.length mons) in
  Array.iteri
    (fun r (x, y, z) ->
      let xn = (x -. cx3) /. hx3
      and yn = (y -. cy3) /. hy3
      and zn = (z -. cz3) /. hz3 in
      Array.iteri
        (fun c (i, j, k) ->
          Matrix.set design r c (pow xn i *. pow yn j *. pow zn k))
        mons)
    pts;
  let coefs3 = Matrix.lstsq design zs in
  { degree3 = degree; cx3; hx3; cy3; hy3; cz3; hz3; coefs3 }

let eval3 s x y z =
  let xn = (x -. s.cx3) /. s.hx3
  and yn = (y -. s.cy3) /. s.hy3
  and zn = (z -. s.cz3) /. s.hz3 in
  let mons = monomials3 s.degree3 in
  let acc = ref 0. in
  Array.iteri
    (fun c (i, j, k) ->
      acc := !acc +. (s.coefs3.(c) *. pow xn i *. pow yn j *. pow zn k))
    mons;
  !acc

let floats_to_string fs =
  String.concat " " (List.map (Printf.sprintf "%.17g") fs)

let surface2_to_string s =
  floats_to_string
    (float_of_int s.degree2 :: s.cx2 :: s.hx2 :: s.cy2 :: s.hy2
    :: Array.to_list s.coefs2)

let surface2_of_string str =
  match String.split_on_char ' ' (String.trim str) with
  | d :: cx :: hx :: cy :: hy :: rest ->
      let degree2 = int_of_float (float_of_string d) in
      let coefs2 = Array.of_list (List.map float_of_string rest) in
      if Array.length coefs2 <> n_terms2 degree2 then
        invalid_arg "Polyfit.surface2_of_string: coefficient count";
      {
        degree2;
        cx2 = float_of_string cx;
        hx2 = float_of_string hx;
        cy2 = float_of_string cy;
        hy2 = float_of_string hy;
        coefs2;
      }
  | _ -> invalid_arg "Polyfit.surface2_of_string: malformed"

let surface3_to_string s =
  floats_to_string
    (float_of_int s.degree3 :: s.cx3 :: s.hx3 :: s.cy3 :: s.hy3 :: s.cz3
    :: s.hz3
    :: Array.to_list s.coefs3)

let surface3_of_string str =
  match String.split_on_char ' ' (String.trim str) with
  | d :: cx :: hx :: cy :: hy :: cz :: hz :: rest ->
      let degree3 = int_of_float (float_of_string d) in
      let coefs3 = Array.of_list (List.map float_of_string rest) in
      if Array.length coefs3 <> n_terms3 degree3 then
        invalid_arg "Polyfit.surface3_of_string: coefficient count";
      {
        degree3;
        cx3 = float_of_string cx;
        hx3 = float_of_string hx;
        cy3 = float_of_string cy;
        hy3 = float_of_string hy;
        cz3 = float_of_string cz;
        hz3 = float_of_string hz;
        coefs3;
      }
  | _ -> invalid_arg "Polyfit.surface3_of_string: malformed"
