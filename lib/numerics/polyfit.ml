(* Surfaces store, per input dimension, the affine normalization
   (center, half-width) used during fitting, the fitted coefficients,
   and the flattened monomial exponent table — an int array computed
   once at fit/parse time. Evaluation walks the canonical monomial
   order with running power products and allocates nothing: the old
   code rebuilt the exponent table (a fresh list plus a boxed-tuple
   array) on every single evaluation, which dominated the synthesis
   hot path (~72k delay-library lookups per small run, 3 evals each). *)

type surface2 = {
  degree2 : int;
  cx2 : float;
  hx2 : float;
  cy2 : float;
  hy2 : float;
  coefs2 : float array; (* indexed like exps2 *)
  exps2 : int array; (* flattened (i, j) pairs, canonical order *)
}

type surface3 = {
  degree3 : int;
  cx3 : float;
  hx3 : float;
  cy3 : float;
  hy3 : float;
  cz3 : float;
  hz3 : float;
  coefs3 : float array;
  exps3 : int array; (* flattened (i, j, k) triples, canonical order *)
}

(* Monomial counts in closed form (no table needed). *)
let n_terms2 d = (d + 1) * (d + 2) / 2
let n_terms3 d = (d + 1) * (d + 2) * (d + 3) / 6

(* Canonical monomial order: total degree <= d, i ascending, then j
   ascending within i (then k ascending within (i, j)). Every consumer
   — fitting, evaluation, serialization — iterates in this one order,
   so coefficient vectors are interchangeable across all of them. *)
let exponents2 degree =
  let t = Array.make (2 * n_terms2 degree) 0 in
  let c = ref 0 in
  for i = 0 to degree do
    for j = 0 to degree - i do
      t.((2 * !c) + 0) <- i;
      t.((2 * !c) + 1) <- j;
      incr c
    done
  done;
  t

let exponents3 degree =
  let t = Array.make (3 * n_terms3 degree) 0 in
  let c = ref 0 in
  for i = 0 to degree do
    for j = 0 to degree - i do
      for k = 0 to degree - i - j do
        t.((3 * !c) + 0) <- i;
        t.((3 * !c) + 1) <- j;
        t.((3 * !c) + 2) <- k;
        incr c
      done
    done
  done;
  t

let norm_params values =
  let lo = Array.fold_left Float.min values.(0) values
  and hi = Array.fold_left Float.max values.(0) values in
  let c = (lo +. hi) /. 2. in
  let h = (hi -. lo) /. 2. in
  (c, if h > 0. then h else 1.)

let pow x n =
  let rec go acc n = if n = 0 then acc else go (acc *. x) (n - 1) in
  go 1. n

let check_finite who pts =
  if not (Array.for_all Float.is_finite pts) then
    invalid_arg (who ^ ": non-finite sample")

let fit2 ~degree pts zs =
  let n = Array.length pts in
  if n <> Array.length zs then invalid_arg "Polyfit.fit2: length mismatch";
  let exps2 = exponents2 degree in
  let terms = n_terms2 degree in
  if n < terms then invalid_arg "Polyfit.fit2: underdetermined";
  let xs = Array.map fst pts and ys = Array.map snd pts in
  check_finite "Polyfit.fit2" xs;
  check_finite "Polyfit.fit2" ys;
  check_finite "Polyfit.fit2" zs;
  let cx2, hx2 = norm_params xs and cy2, hy2 = norm_params ys in
  let design = Matrix.create n terms in
  Array.iteri
    (fun r (x, y) ->
      let xn = (x -. cx2) /. hx2 and yn = (y -. cy2) /. hy2 in
      for c = 0 to terms - 1 do
        let i = exps2.(2 * c) and j = exps2.((2 * c) + 1) in
        Matrix.set design r c (pow xn i *. pow yn j)
      done)
    pts;
  let coefs2 = Matrix.lstsq design zs in
  { degree2 = degree; cx2; hx2; cy2; hy2; coefs2; exps2 }

(* Zero-allocation evaluation: the nested loops enumerate exactly the
   canonical monomial order, and the running products [xp]/[yp] rebuild
   [pow xn i]/[pow yn j] with the same left-associated multiplications,
   so every term — and the summation order — is bit-identical to the
   old exponent-table walk. *)
let eval2 s x y =
  let xn = (x -. s.cx2) /. s.hx2 and yn = (y -. s.cy2) /. s.hy2 in
  let acc = ref 0. in
  let c = ref 0 in
  let xp = ref 1. in
  for i = 0 to s.degree2 do
    let yp = ref 1. in
    for _j = 0 to s.degree2 - i do
      acc := !acc +. (s.coefs2.(!c) *. !xp *. !yp);
      yp := !yp *. yn;
      incr c
    done;
    xp := !xp *. xn
  done;
  !acc

let fit3 ~degree pts zs =
  let n = Array.length pts in
  if n <> Array.length zs then invalid_arg "Polyfit.fit3: length mismatch";
  let exps3 = exponents3 degree in
  let terms = n_terms3 degree in
  if n < terms then invalid_arg "Polyfit.fit3: underdetermined";
  let xs = Array.map (fun (x, _, _) -> x) pts
  and ys = Array.map (fun (_, y, _) -> y) pts
  and zs' = Array.map (fun (_, _, z) -> z) pts in
  check_finite "Polyfit.fit3" xs;
  check_finite "Polyfit.fit3" ys;
  check_finite "Polyfit.fit3" zs';
  check_finite "Polyfit.fit3" zs;
  let cx3, hx3 = norm_params xs
  and cy3, hy3 = norm_params ys
  and cz3, hz3 = norm_params zs' in
  let design = Matrix.create n terms in
  Array.iteri
    (fun r (x, y, z) ->
      let xn = (x -. cx3) /. hx3
      and yn = (y -. cy3) /. hy3
      and zn = (z -. cz3) /. hz3 in
      for c = 0 to terms - 1 do
        let i = exps3.(3 * c)
        and j = exps3.((3 * c) + 1)
        and k = exps3.((3 * c) + 2) in
        Matrix.set design r c (pow xn i *. pow yn j *. pow zn k)
      done)
    pts;
  let coefs3 = Matrix.lstsq design zs in
  { degree3 = degree; cx3; hx3; cy3; hy3; cz3; hz3; coefs3; exps3 }

let eval3 s x y z =
  let xn = (x -. s.cx3) /. s.hx3
  and yn = (y -. s.cy3) /. s.hy3
  and zn = (z -. s.cz3) /. s.hz3 in
  let acc = ref 0. in
  let c = ref 0 in
  let xp = ref 1. in
  for i = 0 to s.degree3 do
    let yp = ref 1. in
    for j = 0 to s.degree3 - i do
      let zp = ref 1. in
      for _k = 0 to s.degree3 - i - j do
        acc := !acc +. (s.coefs3.(!c) *. !xp *. !yp *. !zp);
        zp := !zp *. zn;
        incr c
      done;
      yp := !yp *. yn
    done;
    xp := !xp *. xn
  done;
  !acc

let exponent_table2 s = Array.copy s.exps2
let exponent_table3 s = Array.copy s.exps3

let floats_to_string fs =
  String.concat " " (List.map (Printf.sprintf "%.17g") fs)

let surface2_to_string s =
  floats_to_string
    (float_of_int s.degree2 :: s.cx2 :: s.hx2 :: s.cy2 :: s.hy2
    :: Array.to_list s.coefs2)

let surface2_of_string str =
  match String.split_on_char ' ' (String.trim str) with
  | d :: cx :: hx :: cy :: hy :: rest ->
      let degree2 = int_of_float (float_of_string d) in
      let coefs2 = Array.of_list (List.map float_of_string rest) in
      if Array.length coefs2 <> n_terms2 degree2 then
        invalid_arg "Polyfit.surface2_of_string: coefficient count";
      {
        degree2;
        cx2 = float_of_string cx;
        hx2 = float_of_string hx;
        cy2 = float_of_string cy;
        hy2 = float_of_string hy;
        coefs2;
        exps2 = exponents2 degree2;
      }
  | _ -> invalid_arg "Polyfit.surface2_of_string: malformed"

let surface3_to_string s =
  floats_to_string
    (float_of_int s.degree3 :: s.cx3 :: s.hx3 :: s.cy3 :: s.hy3 :: s.cz3
    :: s.hz3
    :: Array.to_list s.coefs3)

let surface3_of_string str =
  match String.split_on_char ' ' (String.trim str) with
  | d :: cx :: hx :: cy :: hy :: cz :: hz :: rest ->
      let degree3 = int_of_float (float_of_string d) in
      let coefs3 = Array.of_list (List.map float_of_string rest) in
      if Array.length coefs3 <> n_terms3 degree3 then
        invalid_arg "Polyfit.surface3_of_string: coefficient count";
      {
        degree3;
        cx3 = float_of_string cx;
        hx3 = float_of_string hx;
        cy3 = float_of_string cy;
        hy3 = float_of_string hy;
        cz3 = float_of_string cz;
        hz3 = float_of_string hz;
        coefs3;
        exps3 = exponents3 degree3;
      }
  | _ -> invalid_arg "Polyfit.surface3_of_string: malformed"
