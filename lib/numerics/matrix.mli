(** Dense row-major matrices over floats, sized for the small systems that
    appear in polynomial surface fitting (tens of unknowns). 

    Domain-safety: matrices are caller-owned mutable values; do not share one across domains without external synchronization. The operations here never touch global state. *)

type t

val create : int -> int -> t
(** [create rows cols] is a zero matrix. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val of_arrays : float array array -> t
val copy : t -> t
val identity : int -> t
val transpose : t -> t
val mul : t -> t -> t
val mul_vec : t -> float array -> float array

val solve : t -> float array -> float array
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting. Raises [Failure] on a (numerically) singular matrix. *)

val lstsq : t -> float array -> float array
(** [lstsq a b] minimizes [||a x - b||_2] via the normal equations with
    Tikhonov damping 1e-12 on the diagonal; suitable for the
    well-conditioned normalized bases used in this project. *)

val pp : Format.formatter -> t -> unit
