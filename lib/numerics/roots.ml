let bisect ?(tol = 1e-12) ?(max_iter = 200) f lo hi =
  let flo = f lo and fhi = f hi in
  (* Exact zero tests are intentional: a root that lands exactly on an
     endpoint or midpoint short-circuits the search. *)
  if (flo = 0.) [@cts.float_eq_ok] then lo
  else if (fhi = 0.) [@cts.float_eq_ok] then hi
  else if flo *. fhi > 0. then
    invalid_arg "Roots.bisect: no sign change on interval"
  else
    let rec go lo hi flo iter =
      let mid = (lo +. hi) /. 2. in
      if hi -. lo <= tol || iter >= max_iter then mid
      else
        let fmid = f mid in
        if (fmid = 0.) [@cts.float_eq_ok] then mid
        else if flo *. fmid < 0. then go lo mid flo (iter + 1)
        else go mid hi fmid (iter + 1)
    in
    go lo hi flo 0

let golden_min ?(tol = 1e-9) ?(max_iter = 200) f lo hi =
  let phi = (sqrt 5. -. 1.) /. 2. in
  let rec go a b fa_x fb_x x1 x2 iter =
    if b -. a <= tol || iter >= max_iter then (a +. b) /. 2.
    else if fa_x < fb_x then
      (* Minimum in [a, x2]. *)
      let b' = x2 and x2' = x1 in
      let x1' = b' -. (phi *. (b' -. a)) in
      go a b' (f x1') fa_x x1' x2' (iter + 1)
    else
      let a' = x1 and x1' = x2 in
      let x2' = a' +. (phi *. (b -. a')) in
      go a' b fb_x (f x2') x1' x2' (iter + 1)
  in
  let x1 = hi -. (phi *. (hi -. lo)) in
  let x2 = lo +. (phi *. (hi -. lo)) in
  go lo hi (f x1) (f x2) x1 x2 0
