type t = { r : int; c : int; a : float array }

let create r c =
  if r <= 0 || c <= 0 then invalid_arg "Matrix.create";
  { r; c; a = Array.make (r * c) 0. }

let rows m = m.r
let cols m = m.c
let get m i j = m.a.((i * m.c) + j)
let set m i j v = m.a.((i * m.c) + j) <- v

let of_arrays rows_arr =
  let r = Array.length rows_arr in
  if r = 0 then invalid_arg "Matrix.of_arrays: no rows";
  let c = Array.length rows_arr.(0) in
  let m = create r c in
  Array.iteri
    (fun i row ->
      if Array.length row <> c then invalid_arg "Matrix.of_arrays: ragged";
      Array.iteri (fun j v -> set m i j v) row)
    rows_arr;
  m

let copy m = { m with a = Array.copy m.a }

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    set m i i 1.
  done;
  m

let transpose m =
  let t = create m.c m.r in
  for i = 0 to m.r - 1 do
    for j = 0 to m.c - 1 do
      set t j i (get m i j)
    done
  done;
  t

let mul a b =
  if a.c <> b.r then invalid_arg "Matrix.mul: dimension mismatch";
  let m = create a.r b.c in
  for i = 0 to a.r - 1 do
    for k = 0 to a.c - 1 do
      let aik = get a i k in
      (* Exact: skipping true zeros is a sparsity fast path, not a
         tolerance decision. *)
      if (aik <> 0.) [@cts.float_eq_ok] then
        for j = 0 to b.c - 1 do
          set m i j (get m i j +. (aik *. get b k j))
        done
    done
  done;
  m

let mul_vec a v =
  if a.c <> Array.length v then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init a.r (fun i ->
      let acc = ref 0. in
      for j = 0 to a.c - 1 do
        acc := !acc +. (get a i j *. v.(j))
      done;
      !acc)

let solve a0 b0 =
  if a0.r <> a0.c then invalid_arg "Matrix.solve: not square";
  if a0.r <> Array.length b0 then invalid_arg "Matrix.solve: rhs size";
  let n = a0.r in
  let a = copy a0 and b = Array.copy b0 in
  for col = 0 to n - 1 do
    (* Partial pivoting. *)
    let piv = ref col in
    for i = col + 1 to n - 1 do
      if Float.abs (get a i col) > Float.abs (get a !piv col) then piv := i
    done;
    if Float.abs (get a !piv col) < 1e-300 then
      failwith "Matrix.solve: singular matrix";
    if !piv <> col then begin
      for j = 0 to n - 1 do
        let t = get a col j in
        set a col j (get a !piv j);
        set a !piv j t
      done;
      let t = b.(col) in
      b.(col) <- b.(!piv);
      b.(!piv) <- t
    end;
    let d = get a col col in
    for i = col + 1 to n - 1 do
      let f = get a i col /. d in
      if (f <> 0.) [@cts.float_eq_ok] then begin
        for j = col to n - 1 do
          set a i j (get a i j -. (f *. get a col j))
        done;
        b.(i) <- b.(i) -. (f *. b.(col))
      end
    done
  done;
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref b.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get a i j *. x.(j))
    done;
    x.(i) <- !acc /. get a i i
  done;
  x

let lstsq a b =
  if a.r <> Array.length b then invalid_arg "Matrix.lstsq: rhs size";
  let at = transpose a in
  let ata = mul at a in
  let n = ata.r in
  for i = 0 to n - 1 do
    set ata i i (get ata i i +. 1e-12)
  done;
  let atb = mul_vec at b in
  solve ata atb

let pp fmt m =
  for i = 0 to m.r - 1 do
    for j = 0 to m.c - 1 do
      Format.fprintf fmt "%10.4g " (get m i j)
    done;
    Format.pp_print_newline fmt ()
  done
