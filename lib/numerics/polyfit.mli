(** Least-squares polynomial surface fitting.

    The delay/slew library of Chapter 3 of the paper stores 3rd/4th-order
    polynomial fits of simulation data over (input slew, wire length), and
    trivariate fits for branch components. Inputs are affinely normalized
    to [-1, 1] per dimension before fitting so the monomial normal
    equations stay well conditioned.

    Surfaces carry their flattened monomial exponent table (an int
    array built once at fit/parse time), and {!eval2}/{!eval3} walk the
    canonical monomial order with running power products — they perform
    no allocation per call and are bit-identical (same term values,
    same summation order) to a naive exponent-table walk. This matters:
    a small synthesis run performs ~10^5 surface evaluations.

    Domain-safety: fitting allocates its own scratch matrices per call; no global state. Fitted surfaces are immutable and safe to share across domains. *)

type surface2
(** Bivariate polynomial surface [f (x, y)]. *)

type surface3
(** Trivariate polynomial hypersurface [f (x, y, z)]. *)

val fit2 :
  degree:int -> (float * float) array -> float array -> surface2
  [@@cts.raises "Failure,Invalid_argument"]
(** [fit2 ~degree pts zs] fits all monomials [x^i y^j] with
    [i + j <= degree] to the samples. Requires at least as many samples as
    monomials. Raises [Invalid_argument] when any sample coordinate or
    value is NaN or infinite — a non-finite sample would otherwise
    poison every coefficient and only surface as a strict-writer
    refusal far from the cause. *)

val eval2 : surface2 -> float -> float -> float
(** Allocation-free evaluation (cached-powers loop). *)

val fit3 :
  degree:int -> (float * float * float) array -> float array -> surface3
  [@@cts.raises "Failure,Invalid_argument"]
(** Trivariate analogue of {!fit2} (total degree bound; same
    non-finite-sample rejection). *)

val eval3 : surface3 -> float -> float -> float -> float
(** Allocation-free evaluation (cached-powers loop). *)

val n_terms2 : int -> int
(** Number of monomials of total degree <= d in two variables. *)

val n_terms3 : int -> int

val exponent_table2 : surface2 -> int array
(** A copy of the flattened exponent table: [2*n_terms2] ints, the
    [(i, j)] pair of monomial [c] at indices [2c, 2c+1], in the
    canonical order ([i] ascending, then [j] ascending). The reference
    oracle in the test suite evaluates through this table and asserts
    bit-identity with {!eval2}. *)

val exponent_table3 : surface3 -> int array
(** Trivariate analogue: [3*n_terms3] ints, triples in canonical
    order. *)

val surface2_to_string : surface2 -> string
(** One-line serialization (whitespace-separated floats), inverse of
    {!surface2_of_string}. *)

val surface2_of_string : string -> surface2
  [@@cts.raises "Failure,Invalid_argument"]
(** Parse of {!surface2_to_string} output; raises [Failure] /
    [Invalid_argument] on malformed input. *)

val surface3_to_string : surface3 -> string
val surface3_of_string : string -> surface3
  [@@cts.raises "Failure,Invalid_argument"]
