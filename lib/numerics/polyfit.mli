(** Least-squares polynomial surface fitting.

    The delay/slew library of Chapter 3 of the paper stores 3rd/4th-order
    polynomial fits of simulation data over (input slew, wire length), and
    trivariate fits for branch components. Inputs are affinely normalized
    to [-1, 1] per dimension before fitting so the monomial normal
    equations stay well conditioned. 

    Domain-safety: fitting allocates its own scratch matrices per call; no global state. *)

type surface2
(** Bivariate polynomial surface [f (x, y)]. *)

type surface3
(** Trivariate polynomial hypersurface [f (x, y, z)]. *)

val fit2 :
  degree:int -> (float * float) array -> float array -> surface2
(** [fit2 ~degree pts zs] fits all monomials [x^i y^j] with
    [i + j <= degree] to the samples. Requires at least as many samples as
    monomials. *)

val eval2 : surface2 -> float -> float -> float

val fit3 :
  degree:int -> (float * float * float) array -> float array -> surface3
(** Trivariate analogue of {!fit2} (total degree bound). *)

val eval3 : surface3 -> float -> float -> float -> float

val n_terms2 : int -> int
(** Number of monomials of total degree <= d in two variables. *)

val n_terms3 : int -> int

val surface2_to_string : surface2 -> string
(** One-line serialization (whitespace-separated floats), inverse of
    {!surface2_of_string}. *)

val surface2_of_string : string -> surface2
val surface3_to_string : surface3 -> string
val surface3_of_string : string -> surface3
