(** Scalar root finding and minimization on an interval. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
  [@@cts.raises "Invalid_argument"]
(** [bisect f lo hi] finds a root of [f] in [\[lo, hi\]]. [f lo] and
    [f hi] must have opposite signs (or one endpoint is a root). Raises
    [Invalid_argument] otherwise. Default [tol] is 1e-12 on the abscissa. *)

val golden_min :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [golden_min f lo hi] locates the minimizer of a unimodal [f] on
    [\[lo, hi\]] by golden-section search; returns the abscissa. *)
