(* H-structure correction study (Sec. 4.1.2): run the same benchmark with
   topology correction off, with Method 1 (re-estimation by edge cost) and
   with Method 2 (route all pairings, keep the best), and compare the
   simulated skews — a miniature of the paper's Table 5.3.

   Run with:  dune exec examples/hstructure_study.exe *)

let () =
  let tech = Circuit.Tech.default in
  let dl =
    Delaylib.load_or_characterize ~profile:Delaylib.Fast
      ~cache:".cache/delaylib_fast.txt" tech Circuit.Buffer_lib.default_library
  in
  let d = Bmark.Synthetic.scaled (Bmark.Synthetic.find "r1") 0.2 in
  let sinks = Bmark.Synthetic.sinks d in
  Printf.printf "benchmark %s: %d sinks\n" d.Bmark.Synthetic.name
    (List.length sinks);
  let variants =
    [
      ("original", Cts_config.H_none);
      ("re-estimation (Method 1)", Cts_config.H_reestimate);
      ("correction (Method 2)", Cts_config.H_correct);
    ]
  in
  let base_skew = ref None in
  List.iter
    (fun (label, mode) ->
      let config = Cts_config.with_hstructure (Cts_config.default dl) mode in
      let t0 = Unix.gettimeofday () in
      let res = Cts.synthesize ~config dl sinks in
      let elapsed = Unix.gettimeofday () -. t0 in
      let m = Ctree_sim.simulate tech res.Cts.tree in
      let skew = m.Ctree_sim.skew in
      let ratio =
        match !base_skew with
        | None ->
            base_skew := Some skew;
            ""
        | Some base ->
            Printf.sprintf "  (%+.2f%% vs original)"
              ((skew -. base) /. base *. 100.)
      in
      Printf.printf "%-26s skew %6.1f ps  flippings %3d  (%.1f s)%s\n" label
        (skew *. 1e12) res.Cts.flippings elapsed ratio)
    variants
