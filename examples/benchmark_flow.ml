(* Full benchmark flow, file formats included: generate a GSRC-style
   benchmark file, parse it back, synthesize, verify, and print the
   Table-5.1-style row. Demonstrates that real bookshelf/contest files
   drop straight into the flow.

   Run with:  dune exec examples/benchmark_flow.exe [-- <bench> <scale>] *)

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "r1" in
  let scale =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 0.15
  in
  let tech = Circuit.Tech.default in
  let d = Bmark.Synthetic.find bench in
  let d = if scale < 1. then Bmark.Synthetic.scaled d scale else d in

  (* Write the instance in GSRC bookshelf format... *)
  let path = Printf.sprintf "%s.bst" d.Bmark.Synthetic.name in
  let path = String.map (fun c -> if c = '@' then '_' else c) path in
  Bmark.Gsrc_format.write_file
    ~unit_res:tech.Circuit.Tech.unit_res ~unit_cap:tech.Circuit.Tech.unit_cap
    (Bmark.Synthetic.sinks d)
    path;
  Printf.printf "benchmark written to %s\n" path;

  (* ...and parse it back, exactly as a real r1.bst would be read. *)
  let sinks, meta = Bmark.Gsrc_format.parse_file path in
  Printf.printf "parsed %d sinks (unit res %s ohm/um)\n" (List.length sinks)
    (match meta.Bmark.Gsrc_format.unit_res with
    | Some r -> Printf.sprintf "%g" r
    | None -> "unspecified");

  let dl =
    Delaylib.load_or_characterize ~profile:Delaylib.Fast
      ~cache:".cache/delaylib_fast.txt" tech Circuit.Buffer_lib.default_library
  in
  let t0 = Unix.gettimeofday () in
  let res = Cts.synthesize dl sinks in
  let syn_s = Unix.gettimeofday () -. t0 in
  let m = Ctree_sim.simulate tech res.Cts.tree in
  print_endline
    (Tables.render
       ~header:
         [ "bench"; "#sinks"; "worst slew (ps)"; "skew (ps)"; "latency (ns)";
           "#bufs"; "syn (s)" ]
       [
         [
           d.Bmark.Synthetic.name;
           string_of_int (List.length sinks);
           Tables.ps m.Ctree_sim.worst_slew;
           Tables.ps m.Ctree_sim.skew;
           Tables.ns m.Ctree_sim.latency;
           string_of_int (Ctree.n_buffers res.Cts.tree);
           Printf.sprintf "%.1f" syn_s;
         ];
       ])
