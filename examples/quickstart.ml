(* Quickstart: synthesize a slew-bounded, low-skew buffered clock tree for
   a handful of sinks and verify it with the transient simulator.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let tech = Circuit.Tech.default in
  let buffers = Circuit.Buffer_lib.default_library in

  (* 1. Characterize (or load) the delay/slew library. This is the
     SPICE-fitted model of Chapter 3: polynomial surfaces for buffer
     intrinsic delay, wire delay and wire slew. *)
  let dl =
    Delaylib.load_or_characterize ~profile:Delaylib.Fast
      ~cache:".cache/delaylib_fast.txt" tech buffers
  in

  (* 2. Describe the clock sinks: name, position (um), load cap (F). *)
  let sinks =
    [
      (100., 200., 12e-15); (1800., 300., 8e-15); (400., 1500., 20e-15);
      (2500., 2200., 15e-15); (900., 2600., 10e-15); (2900., 700., 18e-15);
      (1500., 1500., 9e-15); (300., 2900., 14e-15); (2700., 2800., 11e-15);
      (2000., 100., 16e-15); (100., 800., 13e-15); (2950., 1600., 7e-15);
    ]
    |> List.mapi (fun i (x, y, cap) ->
           { Sinks.name = Printf.sprintf "ff%d" i;
             pos = Geometry.Point.make x y;
             cap })
  in

  (* 3. Synthesize. Buffers land wherever slew control needs them —
     including mid-wire — and merge-routing keeps the tree balanced. *)
  let result = Cts.synthesize dl sinks in
  Format.printf "%a@." Ctree.pp_summary result.Cts.tree;
  Printf.printf "estimated: latency %.1f ps, skew %.1f ps, %d levels\n"
    (result.Cts.est_latency *. 1e12)
    (result.Cts.est_skew *. 1e12)
    result.Cts.levels;

  (* 4. Verify with the transient simulator (the stand-in for the paper's
     SPICE verification). *)
  let m = Ctree_sim.simulate tech result.Cts.tree in
  Printf.printf
    "simulated: latency %.1f ps, skew %.1f ps, worst slew %.1f ps at %s\n"
    (m.Ctree_sim.latency *. 1e12)
    (m.Ctree_sim.skew *. 1e12)
    (m.Ctree_sim.worst_slew *. 1e12)
    m.Ctree_sim.worst_slew_node;
  assert (m.Ctree_sim.worst_slew <= 100e-12);

  (* 5. Export a SPICE deck for external cross-checking. *)
  Ctree_netlist.write_file tech result.Cts.tree "quickstart_tree.sp";
  print_endline "SPICE deck written to quickstart_tree.sp"
