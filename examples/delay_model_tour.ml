(* A tour of the delay-modeling substrate (Chapter 3): transient
   simulation, why Elmore/ramp models fall short, and how the
   characterized library closes the gap.

   Run with:  dune exec examples/delay_model_tour.exe *)

module W = Waveform
module T = Spice_sim.Transient
module Rc = Circuit.Rc_tree

let tech = Circuit.Tech.default
let lib = Circuit.Buffer_lib.default_library
let b20 = Circuit.Buffer_lib.by_name lib "BUF20X"
let ps v = v *. 1e12

let () =
  (* --- 1. Raw transient simulation of a buffered stage. --- *)
  print_endline "1. transient simulation: 20X buffer driving 800 um of wire";
  let input = W.smooth_curve ~vdd:tech.Circuit.Tech.vdd ~slew:80e-12 () in
  let load = Rc.leaf ~tag:"load" 10e-15 in
  let r, chain = Rc.wire tech ~length:800. load in
  let tree = Rc.node ~tag:"out" [ (r, chain) ] in
  let res = T.simulate tech (T.Driven_buffer (b20, input)) tree in
  let buf_delay = Option.get (W.delay_50 input (T.root_waveform res) ~vdd:tech.Circuit.Tech.vdd) in
  let total = Option.get (T.stage_delay res ~input ~tag:"load") in
  let slew = Option.get (T.node_slew res ~tag:"load") in
  Printf.printf "   buffer %.1f ps + wire %.1f ps; slew at load %.1f ps\n"
    (ps buf_delay) (ps (total -. buf_delay)) (ps slew);

  (* --- 2. Closed-form metrics on the same wire. --- *)
  print_endline "2. closed-form metrics on the same wire (driven ideally)";
  let m = Elmore.Moments.analyze ~source_res:(Circuit.Buffer_lib.drive_resistance tech b20) tree in
  Printf.printf
    "   Elmore %.1f ps (overestimates)  D2M %.1f ps  Gaussian step slew %.1f ps\n"
    (ps (Elmore.Moments.elmore m "load"))
    (ps (Elmore.Moments.d2m m "load"))
    (ps (Elmore.Moments.step_slew m "load"));

  (* --- 3. The characterized library: fit once, evaluate instantly. --- *)
  print_endline "3. pre-characterized library lookups (Chapter 3)";
  let dl =
    Delaylib.load_or_characterize ~profile:Delaylib.Fast
      ~cache:".cache/delaylib_fast.txt" tech lib
  in
  let e = Delaylib.eval_single dl ~drive:b20 ~load_cap:10e-15 ~input_slew:80e-12 ~length:800. in
  Printf.printf
    "   library: buffer %.1f ps, wire %.1f ps, slew %.1f ps (vs sim above)\n"
    (ps e.Delaylib.buf_delay) (ps e.Delaylib.wire_delay) (ps e.Delaylib.wire_slew);

  (* --- 4. Slew-aware buffer spacing. --- *)
  print_endline "4. how far can each buffer drive before violating 80 ps slew?";
  List.iter
    (fun name ->
      let b = Circuit.Buffer_lib.by_name lib name in
      let len =
        Delaylib.max_length_for_slew dl ~drive:b ~load_cap:1e-15
          ~input_slew:80e-12 ~slew_limit:80e-12
      in
      Printf.printf "   %-7s -> %.0f um\n" name len)
    [ "BUF10X"; "BUF20X"; "BUF30X" ];

  (* --- 5. Input-slew sensitivity of intrinsic delay. --- *)
  print_endline "5. buffer intrinsic delay vs input slew (the effect DME misses)";
  List.iter
    (fun s ->
      let e =
        Delaylib.eval_single dl ~drive:b20 ~load_cap:1e-15 ~input_slew:s
          ~length:400.
      in
      Printf.printf "   input slew %5.0f ps -> intrinsic %.1f ps\n" (ps s)
        (ps e.Delaylib.buf_delay))
    [ 30e-12; 60e-12; 100e-12; 150e-12 ]
