(* Render synthesized clock trees as SVG files — one aggressive CTS tree
   and one merge-node-only DME baseline on the same sinks, so buffer
   placement freedom is visible side by side.

   Run with:  dune exec examples/tree_gallery.exe *)

let () =
  let tech = Circuit.Tech.default in
  let dl =
    Delaylib.load_or_characterize ~profile:Delaylib.Fast
      ~cache:".cache/delaylib_fast.txt" tech Circuit.Buffer_lib.default_library
  in
  let d = Bmark.Synthetic.scaled (Bmark.Synthetic.find "r1") 0.3 in
  let sinks = Bmark.Synthetic.sinks d in
  Printf.printf "rendering %s (%d sinks)\n" d.Bmark.Synthetic.name
    (List.length sinks);
  let res = Cts.synthesize dl sinks in
  Ctree_svg.write_file res.Cts.tree "tree_aggressive.svg";
  let m = Ctree_sim.simulate tech res.Cts.tree in
  Printf.printf
    "  tree_aggressive.svg : %d buffers, skew %.1f ps, worst slew %.1f ps\n"
    (Ctree.n_buffers res.Cts.tree)
    (m.Ctree_sim.skew *. 1e12)
    (m.Ctree_sim.worst_slew *. 1e12);
  let btree =
    Dme.synthesize_buffered tech Circuit.Buffer_lib.default_library sinks
  in
  Ctree_svg.write_file btree "tree_dme_baseline.svg";
  let bm = Ctree_sim.simulate tech btree in
  Printf.printf
    "  tree_dme_baseline.svg : %d buffers, skew %.1f ps, worst slew %.1f ps\n"
    (Ctree.n_buffers btree)
    (bm.Ctree_sim.skew *. 1e12)
    (bm.Ctree_sim.worst_slew *. 1e12);
  (* Power comparison of the two networks. *)
  let p t = Ctree.dynamic_power tech ~freq:1e9 t *. 1e3 in
  Printf.printf "  1 GHz clock power: aggressive %.2f mW, baseline %.2f mW\n"
    (p res.Cts.tree) (p btree);
  (* A blockage-aware variant: macros that buffers must avoid. *)
  let specs_blk, blocks = Bmark.Synthetic.blocked_instance d ~n_blockages:3 in
  let res_blk = Cts.synthesize ~blockages:blocks dl specs_blk in
  Ctree_svg.write_file ~blockages:blocks res_blk.Cts.tree "tree_blocked.svg";
  let mb = Ctree_sim.simulate tech res_blk.Cts.tree in
  Printf.printf
    "  tree_blocked.svg : %d buffers, %d placement violations, skew %.1f \
     ps, worst slew %.1f ps\n"
    (Ctree.n_buffers res_blk.Cts.tree)
    (List.length (Blockage.violations blocks res_blk.Cts.tree))
    (mb.Ctree_sim.skew *. 1e12)
    (mb.Ctree_sim.worst_slew *. 1e12)
