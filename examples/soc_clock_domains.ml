(* SoC scenario: a large die with clustered register banks — the workload
   the paper's introduction motivates ("for clock tree design in a large
   chip area, buffers have to be inserted into wire segments").

   Synthesizes the clock for each domain, compares against the
   merge-node-only buffered DME baseline, and shows where the baseline's
   slew control collapses while aggressive insertion holds the limit.

   Run with:  dune exec examples/soc_clock_domains.exe *)

let tech = Circuit.Tech.default
let buffers = Circuit.Buffer_lib.default_library

(* A clock domain: register banks scattered in a region of the die. *)
type domain = { label : string; origin : float * float; span : float; banks : int }

let domains =
  [
    { label = "cpu_core"; origin = (0., 0.); span = 6000.; banks = 8 };
    { label = "dsp"; origin = (7000., 0.); span = 5000.; banks = 5 };
    { label = "uncore_io"; origin = (0., 7000.); span = 12000.; banks = 4 };
  ]

let sinks_of_domain rng d =
  let ox, oy = d.origin in
  List.concat
    (List.init d.banks (fun b ->
         (* Each bank is a tight cluster of flip-flop clock pins. *)
         let cx = ox +. Util.Rng.float rng d.span in
         let cy = oy +. Util.Rng.float rng d.span in
         List.init 12 (fun i ->
             {
               Sinks.name = Printf.sprintf "%s_b%d_ff%d" d.label b i;
               pos =
                 Geometry.Point.make
                   (cx +. (80. *. Util.Rng.gaussian rng))
                   (cy +. (80. *. Util.Rng.gaussian rng));
               cap = Util.Rng.float_range rng 8e-15 25e-15;
             })))

let () =
  let dl =
    Delaylib.load_or_characterize ~profile:Delaylib.Fast
      ~cache:".cache/delaylib_fast.txt" tech buffers
  in
  let rng = Util.Rng.create 2024 in
  List.iter
    (fun d ->
      let sinks = sinks_of_domain rng d in
      Printf.printf "domain %-10s (%d sinks, span %.0f um)\n" d.label
        (List.length sinks) d.span;
      (* Aggressive buffered CTS. *)
      let res = Cts.synthesize dl sinks in
      let m = Ctree_sim.simulate tech res.Cts.tree in
      Printf.printf
        "  aggressive CTS : %3d buffers  skew %6.1f ps  worst slew %6.1f ps %s\n"
        (Ctree.n_buffers res.Cts.tree)
        (m.Ctree_sim.skew *. 1e12)
        (m.Ctree_sim.worst_slew *. 1e12)
        (if m.Ctree_sim.worst_slew <= 100e-12 then "(meets 100 ps)" else "(VIOLATES)");
      (* Merge-node-only baseline. *)
      let btree = Dme.synthesize_buffered tech buffers sinks in
      let bm = Ctree_sim.simulate tech btree in
      Printf.printf
        "  merge-node DME : %3d buffers  skew %6.1f ps  worst slew %6.1f ps %s\n"
        (Ctree.n_buffers btree)
        (bm.Ctree_sim.skew *. 1e12)
        (bm.Ctree_sim.worst_slew *. 1e12)
        (if bm.Ctree_sim.worst_slew <= 100e-12 then "(meets 100 ps)" else "(VIOLATES)"))
    domains
