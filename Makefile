# Convenience targets; everything is plain dune underneath.
all:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-full:
	dune exec bench/main.exe -- --scale 1.0

examples:
	for e in quickstart soc_clock_domains benchmark_flow hstructure_study \
	         delay_model_tour tree_gallery; do \
	  echo "== $$e =="; dune exec examples/$$e.exe; done

clean:
	dune clean

.PHONY: all test bench bench-full examples clean
