# Convenience targets; everything is plain dune underneath.
all:
	dune build

test:
	dune runtest

# The whole suite under a 4-domain pool and again forced sequential:
# the parallel oracles must hold in both regimes.
test-par:
	CTS_DOMAINS=4 dune runtest --force
	CTS_DOMAINS=1 dune runtest --force

bench:
	dune exec bench/main.exe

bench-full:
	dune exec bench/main.exe -- --scale 1.0

# Sequential-vs-parallel wall-clock comparison; writes BENCH_parallel.json.
bench-par:
	dune exec bench/main.exe -- --profile fast --parallel-bench

# CI smoke: the quick parallel benchmark plus an explicit check that the
# 1-domain and 4-domain runs produced identical results (the benchmark
# itself exits non-zero on a violation; the grep keeps the contract
# visible even if someone relaxes that), then the hot-kernel allocation
# gate — the kernels PR 8 drove to zero words/run must stay there (the
# bench exits 1 on a budget breach). CI uploads BENCH_parallel.json.
bench-smoke: bench-par
	@if ! grep -q '"identical": true' BENCH_parallel.json \
	  || grep -q '"identical": false' BENCH_parallel.json; then \
	  echo "bench-smoke: parallel run not identical to sequential"; exit 1; fi
	@echo "bench-smoke: BENCH_parallel.json OK (identical=true)"
	dune exec bench/main.exe -- --profile fast --alloc-gate

# QoR regression gate: synthesize the canonical fast-profile benchmark
# (writes BENCH_qor.json) and compare it against the committed baseline
# snapshot. Exit 6 = a gated metric regressed beyond its threshold.
qor-gate:
	dune exec bench/main.exe -- --profile fast --qor-bench
	dune exec bin/cts_run.exe -- compare \
	  bench/baselines/BENCH_qor_fast.json BENCH_qor.json

# Refresh the committed baseline after an intentional QoR change.
qor-baseline:
	dune exec bench/main.exe -- --profile fast --qor-bench
	cp BENCH_qor.json bench/baselines/BENCH_qor_fast.json
	@echo "baseline refreshed: bench/baselines/BENCH_qor_fast.json"

# Same gate for the optimal-DP insertion engine: synthesize the same
# canonical benchmark with --insertion dp (writes BENCH_qor_dp.json)
# and compare against its own committed baseline.
qor-gate-dp:
	dune exec bench/main.exe -- --profile fast --insertion dp --qor-bench
	dune exec bin/cts_run.exe -- compare \
	  bench/baselines/BENCH_qor_dp.json BENCH_qor_dp.json

qor-baseline-dp:
	dune exec bench/main.exe -- --profile fast --insertion dp --qor-bench
	cp BENCH_qor_dp.json bench/baselines/BENCH_qor_dp.json
	@echo "baseline refreshed: bench/baselines/BENCH_qor_dp.json"

# Cost-regression gate: synthesize the same canonical benchmark with
# observability on (writes BENCH_obs.json — counters, gauges, cache
# rates; no runtime section, so the file is byte-identical at any
# CTS_DOMAINS) and diff it against the committed baseline under the
# Obs_diff budgets. Exit 6 = a gated cost metric regressed.
obs-gate:
	dune exec bench/main.exe -- --profile fast --obs-bench
	dune exec bin/cts_run.exe -- obs diff \
	  bench/baselines/BENCH_obs_fast.json BENCH_obs.json

# Refresh the committed cost baseline after an intentional change
# (algorithm work that legitimately moves counters).
obs-baseline:
	dune exec bench/main.exe -- --profile fast --obs-bench
	cp BENCH_obs.json bench/baselines/BENCH_obs_fast.json
	@echo "baseline refreshed: bench/baselines/BENCH_obs_fast.json"

# All four lint passes: determinism / domain-safety rules (L1-L5),
# the physical-units checker (U1-U4), the concurrency-effect race
# analyzer (C1-C5) and the exception-flow / resource-safety analyzer
# (E1-E5); see DESIGN.md sections 5e/5f/5h/5k. This one target is the
# local pre-commit story.
lint:
	dune build @lint

# Units checker alone (U1-U4), with the machine-readable report CI
# uploads as an artifact.
lint-units:
	dune build bin/cts_lint.exe
	dune exec --no-build bin/cts_lint.exe -- --only-units \
	  --json lint_report.json lib bin

# Race analyzer alone (C1-C5): verifies every [@cts.guarded] claim
# instead of trusting it. CI uploads the JSON report as an artifact.
lint-race:
	dune build bin/cts_lint.exe
	dune exec --no-build bin/cts_lint.exe -- --only-race \
	  --json race_report.json lib bin

# Exception-flow analyzer alone (E1-E5): verifies every [@cts.raises]
# contract instead of trusting it, and checks task closures, resource
# brackets and catch-alls. CI uploads the JSON report as an artifact.
lint-exc:
	dune build bin/cts_lint.exe
	dune exec --no-build bin/cts_lint.exe -- --only-exc \
	  --json exc_report.json lib bin

# Smoke-check the seeded lint fixtures: each must still trigger its
# rule, or the fixture (and the test pinned to it) has rotted.
lint-fixtures:
	dune build bin/cts_lint.exe
	@if dune exec --no-build bin/cts_lint.exe -- --only-units \
	  --json lint_fixtures.json test/fixtures/lint > /dev/null; then \
	  echo "lint-fixtures: expected diagnostics, got none"; exit 1; fi
	@for r in U1 U2 U3 U4; do \
	  grep -q "\"rule\": \"$$r\"" lint_fixtures.json \
	    || { echo "lint-fixtures: rule $$r did not fire"; exit 1; }; \
	done
	@if dune exec --no-build bin/cts_lint.exe -- --only-race \
	  --json race_fixtures.json test/fixtures/lint/race > /dev/null; then \
	  echo "lint-fixtures: expected race diagnostics, got none"; exit 1; fi
	@for r in C1 C2 C3 C4 C5; do \
	  grep -q "\"rule\": \"$$r\"" race_fixtures.json \
	    || { echo "lint-fixtures: rule $$r did not fire"; exit 1; }; \
	done
	@if dune exec --no-build bin/cts_lint.exe -- --only-exc \
	  --json exc_fixtures.json test/fixtures/lint/exc > /dev/null; then \
	  echo "lint-fixtures: expected exc diagnostics, got none"; exit 1; fi
	@for r in E1 E2 E3 E4 E5; do \
	  grep -q "\"rule\": \"$$r\"" exc_fixtures.json \
	    || { echo "lint-fixtures: rule $$r did not fire"; exit 1; }; \
	done
	@echo "lint-fixtures: all seeded fixtures fire (U1-U4, C1-C5, E1-E5)"

# Observability smoke test: synthesize a small synthetic benchmark with
# --stats and --trace, then validate the emitted Chrome trace JSON
# (hierarchical span tree, flow events, counter/gauge events). Forced
# to 4 domains so pool-task spans and cross-domain flow events actually
# appear even on a single-CPU host.
trace-smoke:
	dune build bin/cts_run.exe
	CTS_DOMAINS=4 dune exec bin/cts_run.exe -- synth --bench r1 --scale 0.05 \
	  --profile fast --cache .cache/delaylib_fast.txt \
	  --stats --trace trace_smoke.json
	dune exec bin/cts_run.exe -- trace-check trace_smoke.json

examples:
	for e in quickstart soc_clock_domains benchmark_flow hstructure_study \
	         delay_model_tour tree_gallery; do \
	  echo "== $$e =="; dune exec examples/$$e.exe; done

# Generated root scratch: lint/race reports, bench outputs, fixture
# smoke reports, the cached characterization text and the smoke trace.
# Committed baselines under bench/baselines/ are untouched.
clean-artifacts:
	rm -f lint_report.json race_report.json exc_report.json \
	  lint_fixtures.json race_fixtures.json exc_fixtures.json \
	  BENCH_*.json test_delaylib_fast.txt trace_smoke.json

clean: clean-artifacts
	dune clean

.PHONY: all test test-par bench bench-full bench-par bench-smoke \
        qor-gate qor-baseline qor-gate-dp qor-baseline-dp \
        obs-gate obs-baseline lint lint-units \
        lint-race lint-exc lint-fixtures trace-smoke examples \
        clean clean-artifacts
