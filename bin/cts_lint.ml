(* Determinism / domain-safety / units / race / exception lint driver.

   Usage: cts_lint [--units] [--only-units] [--race] [--only-race]
                   [--exc] [--only-exc] [--raises-table] [--json FILE]
                   [DIR-OR-FILE ...]
   (default paths: lib bin)

   --units        run the physical-units checker (U1-U4) in addition to
                  the determinism rules (L1-L5)
   --only-units   run only the units checker
   --race         run the concurrency-effect race analyzer (C1-C5) in
                  addition to the determinism rules
   --only-race    run only the race analyzer
   --exc          run the exception-flow analyzer (E1-E5) in addition
                  to the determinism rules
   --only-exc     run only the exception-flow analyzer
   --raises-table print the inferred may-raise effect table
                  ("Module.name: Exn1,Exn2" per line) and exit 0 —
                  the source of truth for [@cts.raises] contracts
   --json FILE    additionally write the diagnostics as canonical JSON
                  (Obs_json writer, stable (file,line,col,rule) order);
                  FILE may be "-" for stdout; the human-readable report
                  still goes to stdout

   Whenever the race analyzer runs, the exception analyzer's inferred
   effect table is computed and shared with it, so C4 can flag
   lock-holding calls to may-raise callees — the two passes use one
   blocking/raising effect table instead of re-walking.

   Exits 1 if any diagnostic is reported, 0 otherwise, 2 on usage
   errors, an unwritable --json path, or nothing to lint. Run from the
   repository root so that rule scoping by relative path (lib/cts_core,
   lib/report, ...) applies; paths are normalized (see
   Lint.normalize_path), so ./-prefixed and absolute spellings of
   repository files scope identically. *)

let usage () =
  prerr_endline
    "usage: cts_lint [--units] [--only-units] [--race] [--only-race] [--exc] \
     [--only-exc] [--raises-table] [--json FILE] [DIR-OR-FILE ...]";
  exit 2

let () =
  let units = ref false in
  let only_units = ref false in
  let race = ref false in
  let only_race = ref false in
  let exc = ref false in
  let only_exc = ref false in
  let raises_table = ref false in
  let json_out = ref None in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--units" :: rest ->
        units := true;
        parse_args rest
    | "--only-units" :: rest ->
        only_units := true;
        parse_args rest
    | "--race" :: rest ->
        race := true;
        parse_args rest
    | "--only-race" :: rest ->
        only_race := true;
        parse_args rest
    | "--exc" :: rest ->
        exc := true;
        parse_args rest
    | "--only-exc" :: rest ->
        only_exc := true;
        parse_args rest
    | "--raises-table" :: rest ->
        raises_table := true;
        parse_args rest
    | "--json" :: file :: rest ->
        json_out := Some file;
        parse_args rest
    | [ "--json" ] -> usage ()
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
        Printf.eprintf "cts_lint: unknown option %s\n" arg;
        usage ()
    | arg :: rest ->
        paths := arg :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let args =
    match List.rev !paths with [] -> [ "lib"; "bin" ] | ps -> ps
  in
  let files = Lint.scan (List.filter Sys.file_exists args) in
  if files = [] then begin
    Printf.eprintf "cts_lint: nothing to lint under: %s\n"
      (String.concat " " args);
    exit 2
  end;
  let ml_count =
    List.length (List.filter (fun f -> Filename.check_suffix f ".ml") files)
  in
  let base = not (!only_units || !only_race || !only_exc) in
  let want_race = !race || !only_race in
  let want_exc = !exc || !only_exc in
  (* One analysis feeds both the E-rules and the race analyzer's
     raise-aware C4. *)
  let exc_result =
    if want_race || want_exc || !raises_table then
      Some (Exc.analyze_paths files)
    else None
  in
  if !raises_table then begin
    (match exc_result with
    | Some r ->
        List.iter
          (fun ((m, n), exns) ->
            Printf.printf "%s.%s: %s\n" m n (String.concat "," exns))
          r.Exc.raises
    | None -> ());
    exit 0
  end;
  let diags =
    let l = if base then Lint.lint_paths files else [] in
    let u = if !units || !only_units then Units.check_paths files else [] in
    let c =
      if want_race then
        let raises =
          match exc_result with Some r -> r.Exc.raises | None -> []
        in
        Race.check_paths ~raises files
      else []
    in
    let e =
      if want_exc then
        match exc_result with Some r -> r.Exc.diagnostics | None -> []
      else []
    in
    Lint.sort_diagnostics (l @ u @ c @ e)
  in
  (match !json_out with
  | None -> ()
  | Some file -> (
      let json = Lint_report.json_of ~files_scanned:ml_count diags in
      match Lint_report.write ~path:file json with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "cts_lint: cannot write JSON report: %s\n" msg;
          exit 2));
  List.iter (fun d -> print_endline (Lint.to_string d)) diags;
  match diags with
  | [] -> Printf.printf "cts_lint: %d files clean\n" ml_count
  | _ ->
      Printf.eprintf "cts_lint: %d diagnostic(s)\n" (List.length diags);
      exit 1
