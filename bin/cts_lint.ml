(* Determinism / domain-safety lint driver.

   Usage: cts_lint [DIR-OR-FILE ...]   (default: lib bin)

   Exits 1 if any diagnostic is reported, 0 otherwise. Run from the
   repository root so that rule scoping by relative path (lib/cts_core,
   lib/report, ...) applies. *)

let () =
  let args =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as rest) -> rest
    | _ -> [ "lib"; "bin" ]
  in
  let files = Lint.scan (List.filter Sys.file_exists args) in
  if files = [] then begin
    Printf.eprintf "cts_lint: nothing to lint under: %s\n"
      (String.concat " " args);
    exit 2
  end;
  let diags = Lint.lint_paths files in
  List.iter (fun d -> print_endline (Lint.to_string d)) diags;
  match diags with
  | [] ->
      Printf.printf "cts_lint: %d files clean\n"
        (List.length
           (List.filter (fun f -> Filename.check_suffix f ".ml") files))
  | _ ->
      Printf.eprintf "cts_lint: %d diagnostic(s)\n" (List.length diags);
      exit 1
