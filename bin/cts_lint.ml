(* Determinism / domain-safety / units / race lint driver.

   Usage: cts_lint [--units] [--only-units] [--race] [--only-race]
                   [--json FILE] [DIR-OR-FILE ...]
   (default paths: lib bin)

   --units       run the physical-units checker (U1-U4) in addition to
                 the determinism rules (L1-L5)
   --only-units  run only the units checker
   --race        run the concurrency-effect race analyzer (C1-C5) in
                 addition to the determinism rules
   --only-race   run only the race analyzer
   --json FILE   additionally write the diagnostics as canonical JSON
                 (Obs_json writer, stable (file,line,col,rule) order);
                 FILE may be "-" for stdout; the human-readable report
                 still goes to stdout

   Exits 1 if any diagnostic is reported, 0 otherwise, 2 on usage
   errors, an unwritable --json path, or nothing to lint. Run from the
   repository root so that rule scoping by relative path (lib/cts_core,
   lib/report, ...) applies; paths are normalized (see
   Lint.normalize_path), so ./-prefixed and absolute spellings of
   repository files scope identically. *)

let usage () =
  prerr_endline
    "usage: cts_lint [--units] [--only-units] [--race] [--only-race] [--json \
     FILE] [DIR-OR-FILE ...]";
  exit 2

let () =
  let units = ref false in
  let only_units = ref false in
  let race = ref false in
  let only_race = ref false in
  let json_out = ref None in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--units" :: rest ->
        units := true;
        parse_args rest
    | "--only-units" :: rest ->
        only_units := true;
        parse_args rest
    | "--race" :: rest ->
        race := true;
        parse_args rest
    | "--only-race" :: rest ->
        only_race := true;
        parse_args rest
    | "--json" :: file :: rest ->
        json_out := Some file;
        parse_args rest
    | [ "--json" ] -> usage ()
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" ->
        Printf.eprintf "cts_lint: unknown option %s\n" arg;
        usage ()
    | arg :: rest ->
        paths := arg :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let args =
    match List.rev !paths with [] -> [ "lib"; "bin" ] | ps -> ps
  in
  let files = Lint.scan (List.filter Sys.file_exists args) in
  if files = [] then begin
    Printf.eprintf "cts_lint: nothing to lint under: %s\n"
      (String.concat " " args);
    exit 2
  end;
  let ml_count =
    List.length (List.filter (fun f -> Filename.check_suffix f ".ml") files)
  in
  let base = not (!only_units || !only_race) in
  let diags =
    let l = if base then Lint.lint_paths files else [] in
    let u = if !units || !only_units then Units.check_paths files else [] in
    let c = if !race || !only_race then Race.check_paths files else [] in
    Lint.sort_diagnostics (l @ u @ c)
  in
  (match !json_out with
  | None -> ()
  | Some file -> (
      let json = Lint_report.json_of ~files_scanned:ml_count diags in
      match Lint_report.write ~path:file json with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "cts_lint: cannot write JSON report: %s\n" msg;
          exit 2));
  List.iter (fun d -> print_endline (Lint.to_string d)) diags;
  match diags with
  | [] -> Printf.printf "cts_lint: %d files clean\n" ml_count
  | _ ->
      Printf.eprintf "cts_lint: %d diagnostic(s)\n" (List.length diags);
      exit 1
