(* Command-line driver for the aggressive buffered CTS flow.

   Subcommands:
     gen           generate a synthetic benchmark file (GSRC or ISPD format)
     characterize  build and save the delay/slew library
     synth         synthesize a clock tree and verify it by simulation
     baseline      merge-node-only buffered DME on the same input
     experiments   run the paper-reproduction experiment drivers *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let domains_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for characterization and synthesis (default: \
           $(b,CTS_DOMAINS) or the recommended domain count; 1 forces \
           sequential execution). Results are bit-identical at any value.")

let setup_domains = function
  | Some n when n >= 1 -> Parallel.set_default_size n
  | Some n ->
      Printf.eprintf "cts_run: --domains must be positive (got %d)\n" n;
      exit 1
  | None -> ()

let profile_t =
  let profile_conv =
    Arg.enum [ ("fast", Delaylib.Fast); ("accurate", Delaylib.Accurate) ]
  in
  Arg.(
    value & opt profile_conv Delaylib.Accurate
    & info [ "profile" ] ~docv:"PROFILE"
        ~doc:"Characterization profile: $(b,fast) or $(b,accurate).")

let cache_t =
  Arg.(
    value
    & opt string ".cache/delaylib.txt"
    & info [ "cache" ] ~docv:"FILE" ~doc:"Delay/slew library cache file.")

let scale_t =
  Arg.(
    value & opt float 1.0
    & info [ "scale" ] ~docv:"F"
        ~doc:"Scale factor in (0,1] applied to named benchmarks.")

let bench_t =
  Arg.(
    value & opt (some string) None
    & info [ "bench" ] ~docv:"NAME"
        ~doc:"Synthetic benchmark name (r1-r5, f11-f32, fnb1).")

let file_t =
  Arg.(
    value & opt (some string) None
    & info [ "file" ] ~docv:"PATH" ~doc:"Benchmark file to read instead.")

let format_t =
  Arg.(
    value & opt (enum [ ("gsrc", `Gsrc); ("ispd", `Ispd) ]) `Gsrc
    & info [ "format" ] ~docv:"FMT" ~doc:"Benchmark file format.")

let insertion_t =
  Arg.(
    value
    & opt
        (enum [ ("greedy", Cts_config.Greedy); ("dp", Cts_config.Optimal_dp) ])
        Cts_config.Greedy
    & info [ "insertion" ] ~docv:"ENGINE"
        ~doc:
          "Buffer-insertion engine: $(b,greedy) (slew-driven walk) or \
           $(b,dp) (optimal multi-cell candidate-set DP with the greedy \
           solution as incumbent).")

let stats_t =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print observability counters, histograms and per-phase \
           timings after the run.")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file of the run (open in \
           chrome://tracing or Perfetto).")

(* Enable observability for the duration of [f] when --stats/--trace
   ask for it, then dump the requested outputs. Counters are
   deterministic; phase timings are wall-clock and informational. *)
let with_obs ~stats ~trace f =
  if not (stats || trace <> None) then f ()
  else begin
    Obs.reset ();
    Obs.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        let snap = Obs.snapshot () in
        Obs.set_enabled false;
        if stats then begin
          print_string (Obs.summary snap);
          let tbl = Progress.levels_table snap in
          if tbl <> "" then Printf.printf "per-level progress:\n%s" tbl
        end;
        match trace with
        | Some path ->
            Obs.write_trace path snap;
            Printf.printf "trace written to %s\n" path
        | None -> ())
      f
  end

let load_dl profile cache =
  let dir = Filename.dirname cache in
  (try if dir <> "." && not (Sys.file_exists dir) then Unix.mkdir dir 0o755
   with Unix.Unix_error _ -> ());
  Delaylib.load_or_characterize ~profile ~cache Circuit.Tech.default
    Circuit.Buffer_lib.default_library

let sinks_of ~bench ~file ~format ~scale =
  match (bench, file) with
  | Some name, None ->
      let d = Bmark.Synthetic.find name in
      let d = if scale < 1. then Bmark.Synthetic.scaled d scale else d in
      Bmark.Synthetic.sinks d
  | None, Some path -> (
      match format with
      | `Gsrc -> fst (Bmark.Gsrc_format.parse_file path)
      | `Ispd -> (Bmark.Ispd_format.parse_file path).Bmark.Ispd_format.sinks)
  | None, None -> failwith "specify --bench or --file"
  | Some _, Some _ -> failwith "--bench and --file are mutually exclusive"

let report_metrics label tree (m : Ctree_sim.metrics) =
  Printf.printf "%s\n  %s\n" label (Format.asprintf "%a" Ctree.pp_summary tree);
  Printf.printf
    "  simulated: latency=%.1f ps  skew=%.1f ps  worst slew=%.1f ps (%s)  \
     settled=%b\n"
    (m.Ctree_sim.latency *. 1e12)
    (m.Ctree_sim.skew *. 1e12)
    (m.Ctree_sim.worst_slew *. 1e12)
    m.Ctree_sim.worst_slew_node m.Ctree_sim.all_settled

(* --------------------------- gen ---------------------------------- *)

let gen_cmd =
  let out_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Output file.")
  in
  let run bench scale format out verbose =
    setup_logs verbose;
    let name = Option.value ~default:"r1" bench in
    let d = Bmark.Synthetic.find name in
    let d = if scale < 1. then Bmark.Synthetic.scaled d scale else d in
    let sinks = Bmark.Synthetic.sinks d in
    (match format with
    | `Gsrc ->
        Bmark.Gsrc_format.write_file
          ~unit_res:Circuit.Tech.default.Circuit.Tech.unit_res
          ~unit_cap:Circuit.Tech.default.Circuit.Tech.unit_cap sinks out
    | `Ispd ->
        Bmark.Ispd_format.write_file
          (Bmark.Ispd_format.make ~slew_limit:100e-12 sinks)
          out);
    Printf.printf "wrote %d sinks to %s\n" (List.length sinks) out
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic benchmark file")
    Term.(const run $ bench_t $ scale_t $ format_t $ out_t $ verbose_t)

(* ----------------------- characterize ----------------------------- *)

let characterize_cmd =
  let out_t =
    Arg.(
      value
      & opt string ".cache/delaylib.txt"
      & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Library output file.")
  in
  let run profile out stats trace domains verbose =
    setup_logs verbose;
    setup_domains domains;
    with_obs ~stats ~trace @@ fun () ->
    let t0 = Unix.gettimeofday () in
    let dl =
      Obs.phase "characterize" (fun () ->
          Delaylib.characterize ~profile Circuit.Tech.default
            Circuit.Buffer_lib.default_library)
    in
    Delaylib.save dl out;
    Printf.printf "characterized in %.1f s; %d fits; saved to %s\n"
      (Unix.gettimeofday () -. t0)
      (List.length (Delaylib.fit_report dl))
      out;
    let worst =
      List.fold_left
        (fun acc (_, _, w) -> Float.max acc w)
        0. (Delaylib.fit_report dl)
    in
    Printf.printf "worst fit residual: %.2f ps\n" (worst *. 1e12)
  in
  Cmd.v
    (Cmd.info "characterize" ~doc:"Build and save the delay/slew library")
    Term.(const run $ profile_t $ out_t $ stats_t $ trace_t $ domains_t
          $ verbose_t)

(* --------------------------- synth -------------------------------- *)

let synth_cmd =
  let hstructure_t =
    Arg.(
      value
      & opt
          (enum
             [
               ("none", Cts_config.H_none);
               ("reestimate", Cts_config.H_reestimate);
               ("correct", Cts_config.H_correct);
             ])
          Cts_config.H_none
      & info [ "hstructure" ] ~docv:"MODE"
          ~doc:"H-structure handling: none, reestimate or correct.")
  in
  let deck_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "deck" ] ~docv:"PATH" ~doc:"Write a SPICE deck of the tree.")
  in
  let slew_limit_t =
    Arg.(
      value & opt float 100.
      & info [ "slew-limit" ] ~docv:"PS" ~doc:"Slew limit in picoseconds.")
  in
  let blockages_t =
    Arg.(
      value & opt int 0
      & info [ "blockages" ] ~docv:"N"
          ~doc:
            "Generate N placement macros on the synthetic benchmark \
             (buffers avoid them; wires may cross). Only with --bench.")
  in
  let svg_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~docv:"PATH" ~doc:"Render the tree layout to SVG.")
  in
  let run bench file format scale profile cache hstructure insertion deck
      slew_limit n_blockages svg stats trace domains verbose =
    setup_logs verbose;
    setup_domains domains;
    with_obs ~stats ~trace @@ fun () ->
    let dl = Obs.phase "load-library" (fun () -> load_dl profile cache) in
    let sinks, blocks =
      if n_blockages > 0 then begin
        match bench with
        | Some name ->
            let d = Bmark.Synthetic.find name in
            let d = if scale < 1. then Bmark.Synthetic.scaled d scale else d in
            Bmark.Synthetic.blocked_instance d ~n_blockages
        | None -> failwith "--blockages requires --bench"
      end
      else (sinks_of ~bench ~file ~format ~scale, [])
    in
    let config =
      {
        (Cts_config.default dl) with
        Cts_config.hstructure;
        insertion;
        slew_limit = slew_limit *. 1e-12;
        slew_target = 0.8 *. slew_limit *. 1e-12;
      }
    in
    let t0 = Unix.gettimeofday () in
    let res =
      Obs.phase "synthesize" (fun () ->
          Cts.synthesize ~config ~blockages:blocks dl sinks)
    in
    Printf.printf "synthesized %d sinks in %.1f s (%d levels, %d flippings)\n"
      (List.length sinks)
      (Unix.gettimeofday () -. t0)
      res.Cts.levels res.Cts.flippings;
    (match Ctree.validate res.Cts.tree @ Blockage.violations blocks res.Cts.tree with
    | [] -> ()
    | errs ->
        List.iter (Printf.printf "  invariant violation: %s\n") errs;
        exit 2);
    let m =
      Obs.phase "simulate" (fun () ->
          Ctree_sim.simulate Circuit.Tech.default res.Cts.tree)
    in
    report_metrics "aggressive CTS result:" res.Cts.tree m;
    (match deck with
    | Some path ->
        Ctree_netlist.write_file Circuit.Tech.default res.Cts.tree path;
        Printf.printf "SPICE deck written to %s\n" path
    | None -> ());
    (match svg with
    | Some path ->
        Ctree_svg.write_file ~blockages:blocks res.Cts.tree path;
        Printf.printf "SVG written to %s\n" path
    | None -> ());
    if m.Ctree_sim.worst_slew > slew_limit *. 1e-12 then begin
      Printf.printf "SLEW LIMIT VIOLATED\n";
      exit 3
    end
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Synthesize a buffered clock tree and verify it")
    Term.(
      const run $ bench_t $ file_t $ format_t $ scale_t $ profile_t $ cache_t
      $ hstructure_t $ insertion_t $ deck_t $ slew_limit_t $ blockages_t
      $ svg_t $ stats_t $ trace_t $ domains_t $ verbose_t)

(* -------------------------- baseline ------------------------------ *)

let baseline_cmd =
  let run bench file format scale verbose =
    setup_logs verbose;
    let sinks = sinks_of ~bench ~file ~format ~scale in
    let tree =
      Dme.synthesize_buffered Circuit.Tech.default
        Circuit.Buffer_lib.default_library sinks
    in
    let m = Ctree_sim.simulate Circuit.Tech.default tree in
    report_metrics "merge-node-only buffered DME baseline:" tree m
  in
  Cmd.v
    (Cmd.info "baseline" ~doc:"Run the merge-node-only buffered DME baseline")
    Term.(const run $ bench_t $ file_t $ format_t $ scale_t $ verbose_t)

(* ------------------------- experiments ---------------------------- *)

let experiments_cmd =
  let names_t =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"EXPERIMENT" ~doc:"Experiment ids (default: all).")
  in
  let run names scale profile stats trace domains verbose =
    setup_logs verbose;
    setup_domains domains;
    with_obs ~stats ~trace @@ fun () ->
    let env =
      Obs.phase "characterize" (fun () -> Experiments.make_env ~profile ~scale ())
    in
    let todo =
      match names with
      | [] -> Experiments.all
      | _ -> List.filter (fun (n, _) -> List.mem n names) Experiments.all
    in
    List.iter
      (fun (name, driver) ->
        Obs.phase ("exp:" ^ name) (fun () ->
            Printf.printf "=== %s ===\n%s\n" name (driver env)))
      todo
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run paper-reproduction experiment drivers")
    Term.(
      const run $ names_t $ scale_t $ profile_t $ stats_t $ trace_t
      $ domains_t $ verbose_t)

(* ---------------------------- qor --------------------------------- *)

let qor_cmd =
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PATH"
          ~doc:"Write the snapshot to this file instead of stdout.")
  in
  let runtime_t =
    Arg.(
      value & flag
      & info [ "runtime" ]
          ~doc:
            "Include the wall-clock runtime section. Off by default: \
             runtime is non-deterministic and breaks the byte-identity \
             guarantee of the snapshot (compare ignores it either way).")
  in
  let slew_limit_t =
    Arg.(
      value & opt float 100.
      & info [ "slew-limit" ] ~docv:"PS" ~doc:"Slew limit in picoseconds.")
  in
  let run bench file format scale profile cache insertion slew_limit out
      with_runtime domains verbose =
    setup_logs verbose;
    setup_domains domains;
    let t0 = Unix.gettimeofday () in
    let dl = load_dl profile cache in
    let sinks = sinks_of ~bench ~file ~format ~scale in
    let config =
      {
        (Cts_config.default dl) with
        Cts_config.insertion;
        slew_limit = slew_limit *. 1e-12;
        slew_target = 0.8 *. slew_limit *. 1e-12;
      }
    in
    (* Observability is scoped to synthesis alone — after the library
       load — so a cold vs. warm characterization cache cannot perturb
       the deterministic counter totals in the snapshot. *)
    Obs.reset ();
    Obs.set_enabled true;
    let res = Obs.phase "synthesize" (fun () -> Cts.synthesize ~config dl sinks) in
    let obs = Obs.snapshot () in
    Obs.set_enabled false;
    let runtime =
      if with_runtime then
        Some (Qor.runtime_of_obs ~wall_s:(Unix.gettimeofday () -. t0) obs)
      else None
    in
    let label =
      match (bench, file) with
      | Some name, _ -> name
      | None, Some path -> Filename.basename path
      | None, None -> "unnamed"
    in
    let profile_name =
      match profile with Delaylib.Fast -> "fast" | Delaylib.Accurate -> "accurate"
    in
    let q =
      Qor.capture ~label ~profile:profile_name ~scale ~obs ?runtime dl config
        res
    in
    match out with
    | Some path ->
        Qor.write_file path q;
        Printf.printf "QoR snapshot written to %s\n" path
    | None -> print_string (Qor.render q)
  in
  Cmd.v
    (Cmd.info "qor"
       ~doc:
         "Synthesize and emit a versioned QoR snapshot (JSON). \
          Deterministic: byte-identical at any --domains value.")
    Term.(
      const run $ bench_t $ file_t $ format_t $ scale_t $ profile_t $ cache_t
      $ insertion_t $ slew_limit_t $ out_t $ runtime_t $ domains_t
      $ verbose_t)

(* -------------------------- compare ------------------------------- *)

let compare_cmd =
  let baseline_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline QoR snapshot (JSON).")
  in
  let candidate_t =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"CANDIDATE" ~doc:"Candidate QoR snapshot (JSON).")
  in
  let run base_path cand_path =
    match Qor_compare.compare_files ~baseline:base_path cand_path with
    | Error msg ->
        Printf.eprintf "cts_run: %s\n" msg;
        exit 2
    | Ok rep ->
        print_string (Qor_compare.render rep);
        exit (Qor_compare.exit_code rep)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Compare two QoR snapshots metric by metric. Exits 6 when any \
          gated metric regressed beyond its threshold, 2 when a \
          snapshot cannot be read.")
    Term.(const run $ baseline_t $ candidate_t)

(* ---------------------------- obs --------------------------------- *)

(* The cost-side mirror of qor/compare: [obs snapshot] emits a
   canonical Obs_snapshot of one synthesis, [obs diff] gates a
   candidate snapshot against a baseline with the Qor_compare
   classifier under the Obs_diff budgets. *)

let obs_snapshot_cmd =
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PATH"
          ~doc:"Write the snapshot to this file instead of stdout.")
  in
  let runtime_t =
    Arg.(
      value & flag
      & info [ "runtime" ]
          ~doc:
            "Include the span-tree runtime section (wall-clock times, \
             GC deltas). Off by default: runtime is non-deterministic \
             and breaks the byte-identity guarantee of the snapshot \
             (obs diff ignores it either way).")
  in
  let run bench file format scale profile cache insertion out with_runtime
      domains verbose =
    setup_logs verbose;
    setup_domains domains;
    let dl = load_dl profile cache in
    let sinks = sinks_of ~bench ~file ~format ~scale in
    let config = { (Cts_config.default dl) with Cts_config.insertion } in
    (* Scoped to synthesis alone, after the library load, exactly like
       the qor command: a cold characterization cache cannot perturb
       the counter totals. *)
    Obs.reset ();
    Obs.set_enabled true;
    ignore
      (Obs.phase "synthesize" (fun () -> Cts.synthesize ~config dl sinks)
        : Cts.result);
    let obs = Obs.snapshot () in
    Obs.set_enabled false;
    let label =
      match (bench, file) with
      | Some name, _ -> name
      | None, Some path -> Filename.basename path
      | None, None -> "unnamed"
    in
    let snap = Obs_snapshot.of_obs ~label ~runtime:with_runtime obs in
    match out with
    | Some path ->
        Obs_snapshot.write_file path snap;
        Printf.printf "obs snapshot written to %s\n" path
    | None -> print_string (Obs_snapshot.render snap)
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Synthesize and emit a versioned obs cost snapshot (JSON). \
          Deterministic: byte-identical at any --domains value.")
    Term.(
      const run $ bench_t $ file_t $ format_t $ scale_t $ profile_t $ cache_t
      $ insertion_t $ out_t $ runtime_t $ domains_t $ verbose_t)

let obs_diff_cmd =
  let baseline_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline obs snapshot (JSON).")
  in
  let candidate_t =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"CANDIDATE" ~doc:"Candidate obs snapshot (JSON).")
  in
  let run base_path cand_path =
    match Obs_diff.compare_files ~baseline:base_path cand_path with
    | Error msg ->
        Printf.eprintf "cts_run: %s\n" msg;
        exit 2
    | Ok rep ->
        print_string (Qor_compare.render rep);
        exit (Qor_compare.exit_code rep)
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two obs cost snapshots counter by counter. Exits 6 \
          when any gated counter, gauge or rate regressed beyond its \
          budget, 2 when a snapshot cannot be read.")
    Term.(const run $ baseline_t $ candidate_t)

let obs_cmd =
  Cmd.group
    (Cmd.info "obs"
       ~doc:"Observability cost snapshots: emit and diff (the cost-side \
             counterpart of qor/compare)")
    [ obs_snapshot_cmd; obs_diff_cmd ]

(* ------------------------- trace-check ---------------------------- *)

let trace_check_cmd =
  let file_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Trace file written by --trace.")
  in
  let run path =
    let contents =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Obs.validate_trace contents with
    | Ok n -> Printf.printf "valid trace (%d events)\n" n
    | Error msg ->
        Printf.eprintf "cts_run: %s: invalid trace: %s\n" path msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:"Validate a Chrome trace-event JSON file written by --trace")
    Term.(const run $ file_t)

let () =
  let info =
    Cmd.info "cts_run" ~version:"1.0.0"
      ~doc:"Clock tree synthesis under aggressive buffer insertion"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd;
            characterize_cmd;
            synth_cmd;
            baseline_cmd;
            experiments_cmd;
            qor_cmd;
            compare_cmd;
            obs_cmd;
            trace_check_cmd;
          ]))
